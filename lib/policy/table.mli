(** Compiled decision tables: the wire-speed fast path of the policy
    engine.

    {!Engine.decide} in interpreted mode scans every rule indexed under the
    request's asset.  This module instead lowers an {!Ir.db} once, at
    policy-load time, into an indexed structure so the hot path is a single
    hash lookup (paper Fig. 4's hardware decision block; DiSPEL compiles
    bus policies into per-node tables for the same reason):

    - rules are bucketed by [(subject, asset, op)] into a flat
      {e open-addressed} dispatch (power-of-two capacity, linear probing,
      dedicated hashing via {!Ir.Request.triple_hash} — no polymorphic
      hashing, and no per-lookup allocation the way [Hashtbl.find_opt]
      would); rules over [any] subject are merged into every named
      subject's bucket and also kept in a wildcard [(asset, op)] dispatch
      ({!Ir.Request.pair_hash}) for subjects the policy never names;
    - mode lists are interned to bitmasks and message-ID ranges lowered to
      sorted interval arrays ({!Intervals}), so per-rule matching is a mask
      test plus a binary search;
    - the conflict-resolution strategy is folded away at compile time by
      reordering each bucket (deny-overrides hoists denies, allow-overrides
      hoists allows, first-match keeps source order), after which runtime
      resolution for every strategy is "first match in bucket order wins";
    - a bucket whose first rule matches unconditionally (all modes, all
      message IDs, no rate limit) collapses to a precomputed constant
      decision — the common case for generated least-privilege policies;
    - a bucket whose rules are all {e mode-only} (no message ranges, no
      rates, mode lists interned to masks) collapses to one precomputed
      decision per interned mode id, so deciding it is a single array
      read indexed by the request's mode — no scan, no branches.

    Rate-limited rules cannot be folded (their outcome is time-dependent);
    buckets containing one keep the scan form and consult the engine's
    budget through the callbacks passed to {!decide}.

    {b Immutability.}  A table is frozen once {!compile} returns: no
    operation in this interface (or in the implementation) mutates it, so
    one compiled table can be shared {e read-only} by any number of
    engines — including engines running in different OCaml domains
    ({!Secpol_par} relies on this; per-engine mutable state such as decision
    caches and rate budgets lives in {!Engine}, never here). *)

type strategy = Deny_overrides | Allow_overrides | First_match
(** Re-exported by {!Engine.strategy}; defined here so compilation does not
    depend on the engine. *)

type t

val compile : strategy:strategy -> Ir.db -> t
(** Lower [db] for [strategy].  Observable semantics of {!decide} are
    identical to the interpreted scan for the same strategy. *)

val strategy : t -> strategy
(** The strategy the table was compiled for (folded into bucket order at
    compile time, so it cannot be changed afterwards). *)

val default : t -> Ast.decision

val decide :
  t ->
  rate_available:(Ir.rule -> bool) ->
  rate_consume:(Ir.rule -> unit) ->
  Ir.request ->
  Ast.decision * Ir.rule option
(** One table lookup (+ bucket scan when the bucket could not be folded).
    [rate_available r] must report whether rate-limited allow rule [r] has
    budget for this request's subject; [rate_consume r] is called exactly
    when [r] grounds an [Allow] decision.  Rules without a rate limit never
    reach the callbacks. *)

val decide_batch :
  t ->
  rate_available:(Ir.rule -> string -> float -> bool) ->
  rate_consume:(Ir.rule -> string -> float -> unit) ->
  Batch.t ->
  out:Ast.decision array ->
  int
(** Decide every request of the batch, writing [out.(i)] for request [i]
    (the caller guarantees [Array.length out >= Batch.length]) and
    returning the number of [Allow] decisions (counted inside the sweep so
    the engine's stats need no second pass).  Decisions are exactly those
    {!decide} would take in batch order; matched-rule attribution is not
    produced (that is what keeps the steady-state loop free of minor-heap
    allocation — see {!Engine.decide_batch}).  The rate callbacks receive
    the rule, the request's subject and its [now] timestamp; only
    rate-limited rules reach them. *)

type stats = {
  buckets : int;  (** exact [(subject, asset, op)] buckets *)
  wildcard_buckets : int;  (** [(asset, op)] buckets for unnamed subjects *)
  folded : int;  (** buckets collapsed to a constant decision *)
  mode_folded : int;  (** buckets collapsed to a per-mode decision array *)
  max_bucket : int;  (** longest residual scan *)
  modes : int;  (** distinct interned mode names *)
}

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
