(** Compiled decision tables: the wire-speed fast path of the policy
    engine.

    {!Engine.decide} in interpreted mode scans every rule indexed under the
    request's asset.  This module instead lowers an {!Ir.db} once, at
    policy-load time, into an indexed structure so the hot path is a single
    hash lookup (paper Fig. 4's hardware decision block; DiSPEL compiles
    bus policies into per-node tables for the same reason):

    - rules are bucketed by [(subject, asset, op)] through a dedicated
      [Hashtbl.Make] key module (no polymorphic hashing); rules over
      [any] subject are merged into every named subject's bucket and also
      kept in a wildcard [(asset, op)] table for subjects the policy never
      names;
    - mode lists are interned to bitmasks and message-ID ranges lowered to
      sorted interval arrays ({!Intervals}), so per-rule matching is a mask
      test plus a binary search;
    - the conflict-resolution strategy is folded away at compile time by
      reordering each bucket (deny-overrides hoists denies, allow-overrides
      hoists allows, first-match keeps source order), after which runtime
      resolution for every strategy is "first match in bucket order wins";
    - a bucket whose first rule matches unconditionally (all modes, all
      message IDs, no rate limit) collapses to a precomputed constant
      decision — the common case for generated least-privilege policies.

    Rate-limited rules cannot be folded (their outcome is time-dependent);
    buckets containing one keep the scan form and consult the engine's
    budget through the callbacks passed to {!decide}.

    {b Immutability.}  A table is frozen once {!compile} returns: no
    operation in this interface (or in the implementation) mutates it, so
    one compiled table can be shared {e read-only} by any number of
    engines — including engines running in different OCaml domains
    ({!Secpol_par} relies on this; per-engine mutable state such as decision
    caches and rate budgets lives in {!Engine}, never here). *)

type strategy = Deny_overrides | Allow_overrides | First_match
(** Re-exported by {!Engine.strategy}; defined here so compilation does not
    depend on the engine. *)

type t

val compile : strategy:strategy -> Ir.db -> t
(** Lower [db] for [strategy].  Observable semantics of {!decide} are
    identical to the interpreted scan for the same strategy. *)

val strategy : t -> strategy
(** The strategy the table was compiled for (folded into bucket order at
    compile time, so it cannot be changed afterwards). *)

val default : t -> Ast.decision

val decide :
  t ->
  rate_available:(Ir.rule -> bool) ->
  rate_consume:(Ir.rule -> unit) ->
  Ir.request ->
  Ast.decision * Ir.rule option
(** One table lookup (+ bucket scan when the bucket could not be folded).
    [rate_available r] must report whether rate-limited allow rule [r] has
    budget for this request's subject; [rate_consume r] is called exactly
    when [r] grounds an [Allow] decision.  Rules without a rate limit never
    reach the callbacks. *)

type stats = {
  buckets : int;  (** exact [(subject, asset, op)] buckets *)
  wildcard_buckets : int;  (** [(asset, op)] buckets for unnamed subjects *)
  folded : int;  (** buckets collapsed to a constant decision *)
  max_bucket : int;  (** longest residual scan *)
  modes : int;  (** distinct interned mode names *)
}

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
