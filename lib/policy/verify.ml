(* Semantic policy verification: symbolic analysis of the decision space.

   A policy's behaviour on one access cell — a (mode, subject, asset, op)
   combination — is a total function from the message dimension to
   decisions.  Instead of sampling that function, [partition] computes it
   exactly: one scan of the strategy-folded rule list carves the message
   space ({!Region}) into the regions each rule captures, and whatever is
   left falls to the default.  Everything else here is set algebra over
   those partitions:

   - [analyse] measures default-deny completeness (the partition is total
     by construction, so the default segment is computed, not guessed),
     proves that the interpreted engine, the compiled table and the
     symbolic partition agree by evaluating both real engines at every
     region boundary under every reachable rate-budget state (SP014 on any
     divergence), finds rules whose effective region is empty everywhere
     (SP011) and operating modes with identical decision functions
     (SP010);
   - [diff] computes the exact decision-region changes between two policy
     versions, flagging updates that widen an allow region (SP012);
   - threat-derived denial {!Secpol_threat.Obligation}s are checked
     against the same partitions (SP013).

   Rate-limited rules are the one behavioural wrinkle: an exhausted allow
   falls through to later rules.  The scan treats availability as an
   oracle bit per rated rule and enumerates the assignments, so the
   analysis is exact in every budget state, not just the steady state. *)

module Threat = Secpol_threat.Threat
module Obligation = Secpol_threat.Obligation

type cell = { mode : string; subject : string; asset : string; op : Ir.op }

type cls = Deny | Allow | Rated of Ast.rate

type segment = { region : Region.t; cls : cls; rule : Ir.rule option }

let cls_of_rule (r : Ir.rule) =
  match (r.decision, r.rate) with
  | Ast.Deny, _ -> Deny
  | Ast.Allow, None -> Allow
  | Ast.Allow, Some rate -> Rated rate

let cls_of_decision = function Ast.Allow -> Allow | Ast.Deny -> Deny

let decision_of_cls = function Deny -> Ast.Deny | Allow | Rated _ -> Ast.Allow

let permissive = function Deny -> false | Allow | Rated _ -> true

let cls_name = function
  | Deny -> "deny"
  | Allow -> "allow"
  | Rated r -> Printf.sprintf "allow rate %d/%dms" r.Ast.count r.Ast.window_ms

let strategy_name = function
  | Engine.Deny_overrides -> "deny-overrides"
  | Engine.Allow_overrides -> "allow-overrides"
  | Engine.First_match -> "first-match"

(* ------------------------------------------------------------------ *)
(* Universe                                                            *)
(* ------------------------------------------------------------------ *)

type universe = {
  modes : string list;
  subjects : string list;
  assets : string list;
}

(* Parser identifiers cannot contain parentheses, so this synthetic member
   can never collide with a policy name.  It stands for every mode the
   policy does not name (exercising the compiled table's unknown-mode
   bit), every subject no rule names (exercising the wildcard buckets) and
   every asset with no rules (the pure-default path). *)
let other = "(other)"

let named_modes (db : Ir.db) =
  List.concat_map
    (fun (r : Ir.rule) -> Option.value ~default:[] r.modes)
    db.rules
  |> List.sort_uniq String.compare

let with_other l =
  List.sort_uniq String.compare (List.filter (fun s -> s <> other) l)
  @ [ other ]

let universe ?modes ?subjects ?assets (db : Ir.db) =
  let pick given derived =
    match given with Some (_ :: _ as l) -> l | Some [] | None -> derived
  in
  {
    modes = with_other (pick modes (named_modes db));
    subjects = with_other (pick subjects (Ir.subjects db));
    assets = with_other (pick assets (Ir.assets db));
  }

let cells u =
  List.concat_map
    (fun mode ->
      List.concat_map
        (fun subject ->
          List.concat_map
            (fun asset ->
              List.map
                (fun op -> { mode; subject; asset; op })
                [ Ir.Read; Ir.Write ])
            u.assets)
        u.subjects)
    u.modes

(* ------------------------------------------------------------------ *)
(* Symbolic partition                                                  *)
(* ------------------------------------------------------------------ *)

(* The rules that can decide a cell.  This is provably the set both
   engines consider: the compiled table's exact bucket filters the
   (asset, op) group by subject match, its wildcard bucket keeps exactly
   the any-subject rules, and mode matching (mask, unknown-mode bit or
   literal list) equals {!Ir.mode_matches} on every universe member. *)
let applicable (db : Ir.db) c =
  List.filter
    (fun (r : Ir.rule) ->
      r.asset = c.asset
      && List.mem c.op r.ops
      && Ir.subject_matches r.subjects c.subject
      && Ir.mode_matches r.modes c.mode)
    db.rules

(* Fold the strategy into rule order exactly as {!Table.compile} does:
   after this, every strategy is "first taken rule wins". *)
let reorder strategy rules =
  match strategy with
  | Engine.First_match -> rules
  | Engine.Deny_overrides ->
      let d, a =
        List.partition (fun (r : Ir.rule) -> r.decision = Ast.Deny) rules
      in
      d @ a
  | Engine.Allow_overrides ->
      let d, a =
        List.partition (fun (r : Ir.rule) -> r.decision = Ast.Deny) rules
      in
      a @ d

(* One symbolic evaluation of a cell under a rate oracle: scan the folded
   rules, intersecting each with the space no earlier taken rule captured.
   Rules the oracle marks exhausted match without capturing (the engines
   skip them and fall through); their would-have-matched regions come back
   so a caller can reproduce the oracle state on a real engine by draining
   exactly those budgets.  The returned segments are disjoint and, with
   the default tail, cover the whole message dimension. *)
let scan ~strategy ~exhausted rules ~default =
  let rec go remaining taken skipped = function
    | [] ->
        let tail =
          if Region.is_empty remaining then []
          else
            [ { region = remaining; cls = cls_of_decision default; rule = None } ]
        in
        (List.rev taken @ tail, List.rev skipped)
    | (r : Ir.rule) :: rest ->
        let hit = Region.inter remaining (Region.of_messages r.messages) in
        if Region.is_empty hit then go remaining taken skipped rest
        else if List.mem r.idx exhausted then
          go remaining taken ((r, hit) :: skipped) rest
        else
          go
            (Region.diff remaining hit)
            ({ region = hit; cls = cls_of_rule r; rule = Some r } :: taken)
            skipped rest
  in
  go Region.full [] [] (reorder strategy rules)

let partition ~strategy (db : Ir.db) c =
  fst (scan ~strategy ~exhausted:[] (applicable db c) ~default:db.default)

(* Canonical form of a partition for semantic comparison: the union of
   regions per decision class, keyed and ordered by class. *)
let class_map segments =
  let classes = List.sort_uniq compare (List.map (fun s -> s.cls) segments) in
  List.map
    (fun cls ->
      ( cls,
        List.fold_left
          (fun acc s -> if s.cls = cls then Region.union acc s.region else acc)
          Region.empty segments ))
    classes

let class_maps_equal a b =
  List.length a = List.length b
  && List.for_all2 (fun (c1, r1) (c2, r2) -> c1 = c2 && Region.equal r1 r2) a b

(* ------------------------------------------------------------------ *)
(* Rate oracles                                                        *)
(* ------------------------------------------------------------------ *)

let max_oracle_bits = 6

let prime_cap = 64

let subsets idxs =
  let n = List.length idxs in
  List.init (1 lsl n) (fun bits ->
      List.filteri (fun i _ -> bits land (1 lsl i) <> 0) idxs)

let rated_idxs rules =
  List.filter_map
    (fun (r : Ir.rule) ->
      if r.rate <> None && r.decision = Ast.Allow then Some r.idx else None)
    rules

(* Every budget state of a cell: each subset of its rated allow rules
   marked exhausted.  Past [max_oracle_bits] rated rules in one bucket the
   powerset is truncated to the two extremes (and the report says so). *)
let assignments rules =
  let idxs = rated_idxs rules in
  if List.length idxs <= max_oracle_bits then (subsets idxs, false)
  else ([ []; idxs ], true)

(* ------------------------------------------------------------------ *)
(* Equivalence proof                                                   *)
(* ------------------------------------------------------------------ *)

type proof = {
  cells : int;
  assignments : int;
  witnesses : int;
  unreachable : int;
      (** oracle states no concrete request sequence could reproduce *)
  truncated : int;  (** cells whose oracle powerset was truncated *)
  divergences : Diagnostic.t list;  (** SP014, empty on a proved policy *)
}

let proved p = p.divergences = []

let request_of (c : cell) msg_id =
  { Ir.mode = c.mode; subject = c.subject; asset = c.asset; op = c.op; msg_id }

let engines ~strategy db =
  ( Engine.create ~strategy ~cache:false ~mode:`Interpreted db,
    Engine.create ~strategy ~cache:false ~mode:`Compiled db )

(* Drive a fresh engine pair into an oracle state: for each exhausted rule
   in folded order, fire [count] identical requests at a point only it can
   win, draining its window.  Time stays at 0.0 throughout, so windows
   never slide and earlier drains persist. *)
let prime (interp, compiled) (c : cell) skipped =
  List.iter
    (fun ((r : Ir.rule), region) ->
      match (r.rate, Region.witnesses region) with
      | Some rate, w :: _ ->
          let req = request_of c w in
          for _ = 1 to rate.Ast.count do
            ignore (Engine.decide interp req);
            ignore (Engine.decide compiled req)
          done
      | None, _ | _, [] -> assert false)
    skipped;
  (interp, compiled)

(* ------------------------------------------------------------------ *)
(* Completeness                                                        *)
(* ------------------------------------------------------------------ *)

type completeness = {
  cells : int;
  explicit_cells : int;  (** no point falls to the default *)
  partial_cells : int;  (** some message ids fall to the default *)
  silent_cells : int;  (** every point falls to the default *)
  default : Ast.decision;
  default_points : int;  (** total message points decided by the default *)
}

(* ------------------------------------------------------------------ *)
(* Mode merging (SP010)                                                *)
(* ------------------------------------------------------------------ *)

(* Only mode pairs that some rule actually tells apart are merge
   candidates: if every mode-scoped rule names both or neither, the policy
   already treats them as one class and there is nothing to merge. *)
let distinguishes (db : Ir.db) m1 m2 =
  List.exists
    (fun (r : Ir.rule) ->
      match r.modes with
      | None -> false
      | Some l -> List.mem m1 l <> List.mem m2 l)
    db.rules

let modes_equivalent ~strategy (db : Ir.db) u m1 m2 =
  List.for_all
    (fun subject ->
      List.for_all
        (fun asset ->
          List.for_all
            (fun op ->
              let bucket m = applicable db { mode = m; subject; asset; op } in
              let r1 = bucket m1 and r2 = bucket m2 in
              let rated =
                List.sort_uniq Int.compare (rated_idxs r1 @ rated_idxs r2)
              in
              let sets =
                if List.length rated <= max_oracle_bits then subsets rated
                else [ []; rated ]
              in
              List.for_all
                (fun set ->
                  let map rules =
                    class_map
                      (fst
                         (scan ~strategy ~exhausted:set rules
                            ~default:db.default))
                  in
                  class_maps_equal (map r1) (map r2))
                sets)
            [ Ir.Read; Ir.Write ])
        u.assets)
    u.subjects

let merge_classes ~strategy db u =
  let named = List.filter (fun m -> m <> other) u.modes in
  let place classes m =
    let rec go = function
      | [] -> [ [ m ] ]
      | (rep :: _ as cls) :: rest ->
          if distinguishes db rep m && modes_equivalent ~strategy db u rep m
          then (cls @ [ m ]) :: rest
          else cls :: go rest
      | [] :: _ -> assert false
    in
    go classes
  in
  List.fold_left place [] named |> List.filter (fun c -> List.length c > 1)

(* ------------------------------------------------------------------ *)
(* Obligations (SP013)                                                 *)
(* ------------------------------------------------------------------ *)

type violation = {
  subject : string;
  mode : string;
  region : Region.t;  (** the message region the policy allows *)
  rated : bool;  (** every allowing segment is rate-limited *)
  rules : int list;  (** allowing rule indices; [[]] = default allow *)
}

type obligation_status = {
  obligation : Obligation.t;
  violations : violation list;
}

let discharged s = s.violations = []

let ir_op = function Threat.Read -> Ir.Read | Threat.Write -> Ir.Write

let check_obligation ~strategy db u (o : Obligation.t) =
  let op = ir_op o.Obligation.operation in
  let modes = match o.modes with [] -> u.modes | l -> l in
  let subjects =
    List.filter (fun s -> not (List.mem s o.exempt_subjects)) u.subjects
  in
  let violations =
    List.concat_map
      (fun mode ->
        List.filter_map
          (fun subject ->
            let segments =
              partition ~strategy db { mode; subject; asset = o.asset; op }
            in
            let allowing =
              List.filter (fun (s : segment) -> permissive s.cls) segments
            in
            let region =
              List.fold_left
                (fun acc (s : segment) -> Region.union acc s.region)
                Region.empty allowing
            in
            if Region.is_empty region then None
            else
              Some
                {
                  subject;
                  mode;
                  region;
                  rated =
                    List.for_all
                      (fun (s : segment) ->
                        match s.cls with Rated _ -> true | Deny | Allow -> false)
                      allowing;
                  rules =
                    List.filter_map
                      (fun (s : segment) ->
                        Option.map (fun (r : Ir.rule) -> r.idx) s.rule)
                      allowing
                    |> List.sort_uniq Int.compare;
                })
          subjects)
      modes
  in
  { obligation = o; violations }

let sp013 (s : obligation_status) =
  let o = s.obligation in
  let v = List.hd s.violations in
  let op = ir_op o.Obligation.operation in
  Diagnostic.make Diagnostic.Threat_unmitigated
    (Format.asprintf
       "threat %s: %s on %s is allowed for %d non-exempt subject/mode \
        pair(s), e.g. %s in mode %s over %a%s"
       o.threat_id (Ir.op_name op) o.asset
       (List.length s.violations)
       v.subject v.mode Region.pp v.region
       (if v.rated then " (rate-limited)" else ""))
    ~asset:o.asset ~subject:v.subject ~mode:v.mode ~op
    ?msg_range:(Region.span v.region)
    ?rules:(match v.rules with [] -> None | l -> Some l)

(* ------------------------------------------------------------------ *)
(* The full analysis                                                   *)
(* ------------------------------------------------------------------ *)

type report = {
  db : Ir.db;
  strategy : Engine.strategy;
  universe : universe;
  completeness : completeness;
  proof : proof;
  mergeable : string list list;  (** SP010 mode classes *)
  dead_rules : int list;  (** SP011 rule indices *)
  obligations : obligation_status list;
  diagnostics : Diagnostic.t list;
}

let analyse ?(strategy = Engine.Deny_overrides) ?modes ?subjects ?assets
    ?(obligations = []) (db : Ir.db) =
  let u = universe ?modes ?subjects ?assets db in
  let cs = cells u in
  let effective = Hashtbl.create 64 in
  List.iter
    (fun (r : Ir.rule) -> Hashtbl.replace effective r.idx (ref Region.empty))
    db.rules;
  let divergences = ref [] in
  let witnesses = ref 0 in
  let assignments_n = ref 0 in
  let unreachable = ref 0 in
  let truncated = ref 0 in
  let explicit_cells = ref 0 in
  let partial_cells = ref 0 in
  let silent_cells = ref 0 in
  let default_points = ref 0 in
  let shared = engines ~strategy db in
  let probe (c : cell) (seg : segment) req name engine =
    let expect_decision = decision_of_cls seg.cls in
    let expect_rule = Option.map (fun (r : Ir.rule) -> r.idx) seg.rule in
    let got = Engine.decide engine req in
    let got_rule =
      Option.map (fun (r : Ir.rule) -> r.idx) got.Engine.matched
    in
    let source = function
      | None -> "the default"
      | Some i -> Printf.sprintf "rule #%d" i
    in
    if got.Engine.decision <> expect_decision || got_rule <> expect_rule then
      divergences :=
        Diagnostic.make Diagnostic.Semantics_divergence
          (Format.asprintf
             "%s engine disagrees with the symbolic partition on %a: \
              expected %s by %s, got %s by %s"
             name Ir.pp_request req
             (Ast.decision_name expect_decision)
             (source expect_rule)
             (Ast.decision_name got.Engine.decision)
             (source got_rule))
          ~asset:c.asset ~subject:c.subject ~mode:c.mode ~op:c.op
          ?rules:(Option.map (fun i -> [ i ]) expect_rule)
        :: !divergences
  in
  List.iter
    (fun (c : cell) ->
      let rules = applicable db c in
      let sets, was_truncated = assignments rules in
      if was_truncated then incr truncated;
      List.iter
        (fun set ->
          incr assignments_n;
          let segments, skipped =
            scan ~strategy ~exhausted:set rules ~default:db.default
          in
          List.iter
            (fun seg ->
              match seg.rule with
              | None -> ()
              | Some (r : Ir.rule) ->
                  let slot = Hashtbl.find effective r.idx in
                  slot := Region.union !slot seg.region)
            segments;
          if set = [] then begin
            (* steady state doubles as the completeness measurement *)
            let default_region =
              List.fold_left
                (fun acc s ->
                  if s.rule = None then Region.union acc s.region else acc)
                Region.empty segments
            in
            if Region.is_empty default_region then incr explicit_cells
            else if Region.equal default_region Region.full then
              incr silent_cells
            else incr partial_cells;
            default_points := !default_points + Region.cardinal default_region
          end;
          (* an oracle state is concretely reproducible when every
             exhausted rule has a point to drain through and a small
             enough budget to drain *)
          let reachable =
            List.length skipped = List.length set
            && List.for_all
                 (fun ((r : Ir.rule), _) ->
                   match r.rate with
                   | Some rate -> rate.Ast.count <= prime_cap
                   | None -> false)
                 skipped
          in
          if not reachable then incr unreachable
          else begin
            let pair =
              if set = [] then shared else prime (engines ~strategy db) c skipped
            in
            List.iter
              (fun (seg : segment) ->
                List.iter
                  (fun w ->
                    incr witnesses;
                    (* a witness whose winner is rate-limited consumes
                       budget, so it gets its own freshly primed pair *)
                    let interp, compiled =
                      match seg.cls with
                      | Rated _ -> prime (engines ~strategy db) c skipped
                      | Deny | Allow -> pair
                    in
                    let req = request_of c w in
                    probe c seg req "interpreted" interp;
                    probe c seg req "compiled" compiled)
                  (Region.witnesses seg.region))
              segments
          end)
        sets)
    cs;
  let dead_rules =
    List.filter_map
      (fun (r : Ir.rule) ->
        if Region.is_empty !(Hashtbl.find effective r.idx) then Some r.idx
        else None)
      db.rules
  in
  let sp011 =
    List.filter_map
      (fun (r : Ir.rule) ->
        if not (List.mem r.idx dead_rules) then None
        else
          Some
            (Diagnostic.make Diagnostic.Region_empty
               (Printf.sprintf
                  "rule #%d (%s %s on %s) has an empty effective region: \
                   under %s every request it could match is captured by \
                   other rules, or it can never match the declared universe"
                  r.idx
                  (Ast.decision_name r.decision)
                  (String.concat "+" (List.map Ir.op_name r.ops))
                  r.asset (strategy_name strategy))
               ~rules:[ r.idx ] ~asset:r.asset))
      db.rules
  in
  let mergeable = merge_classes ~strategy db u in
  let sp010 =
    List.map
      (fun cls ->
        Diagnostic.make Diagnostic.Mode_mergeable
          (Printf.sprintf
             "modes %s are semantically equivalent: distinct mode-scoped \
              rules produce identical decision functions on every cell, so \
              their scopes can be merged"
             (String.concat ", " cls))
          ~mode:(List.hd cls))
      mergeable
  in
  let obligations = List.map (check_obligation ~strategy db u) obligations in
  let sp013s =
    List.filter_map
      (fun s -> if discharged s then None else Some (sp013 s))
      obligations
  in
  {
    db;
    strategy;
    universe = u;
    completeness =
      {
        cells = List.length cs;
        explicit_cells = !explicit_cells;
        partial_cells = !partial_cells;
        silent_cells = !silent_cells;
        default = db.default;
        default_points = !default_points;
      };
    proof =
      {
        cells = List.length cs;
        assignments = !assignments_n;
        witnesses = !witnesses;
        unreachable = !unreachable;
        truncated = !truncated;
        divergences = List.sort_uniq Diagnostic.compare !divergences;
      };
    mergeable;
    dead_rules;
    obligations;
    diagnostics =
      List.sort_uniq Diagnostic.compare
        (sp010 @ sp011 @ sp013s @ !divergences);
  }

(* ------------------------------------------------------------------ *)
(* Differential update analysis                                        *)
(* ------------------------------------------------------------------ *)

type direction = Widened | Tightened | Changed

type delta = {
  cell : cell;
  before : cls;
  after : cls;
  region : Region.t;
  direction : direction;
}

type diff_report = {
  old_db : Ir.db;
  new_db : Ir.db;
  strategy : Engine.strategy;
  deltas : delta list;
  diagnostics : Diagnostic.t list;  (** SP012, one per widened delta *)
}

let direction ~before ~after =
  match (before, after) with
  | Deny, (Allow | Rated _) | Rated _, Allow -> Widened
  | (Allow | Rated _), Deny | Allow, Rated _ -> Tightened
  (* two different rates are incomparable in general: a higher count can
     come with a shorter window *)
  | Rated _, Rated _ | Deny, Deny | Allow, Allow -> Changed

let diff ?(strategy = Engine.Deny_overrides) ?modes ?subjects ?assets
    (old_db : Ir.db) (new_db : Ir.db) =
  let both f = List.sort_uniq String.compare (f old_db @ f new_db) in
  let u =
    {
      modes =
        with_other
          (match modes with
          | Some (_ :: _ as l) -> l
          | Some [] | None -> both named_modes);
      subjects =
        with_other
          (match subjects with
          | Some (_ :: _ as l) -> l
          | Some [] | None -> both Ir.subjects);
      assets =
        with_other
          (match assets with
          | Some (_ :: _ as l) -> l
          | Some [] | None -> both Ir.assets);
    }
  in
  let deltas =
    List.concat_map
      (fun c ->
        let m_old = class_map (partition ~strategy old_db c) in
        let m_new = class_map (partition ~strategy new_db c) in
        List.concat_map
          (fun (before, r_old) ->
            List.filter_map
              (fun (after, r_new) ->
                if before = after then None
                else
                  let region = Region.inter r_old r_new in
                  if Region.is_empty region then None
                  else
                    Some
                      {
                        cell = c;
                        before;
                        after;
                        region;
                        direction = direction ~before ~after;
                      })
              m_new)
          m_old)
      (cells u)
  in
  let diagnostics =
    List.filter_map
      (fun d ->
        if d.direction <> Widened then None
        else
          Some
            (Diagnostic.make Diagnostic.Allow_widened
               (Format.asprintf
                  "update widens access: %s may now %s %s in mode %s over \
                   %a (%s -> %s)"
                  d.cell.subject (Ir.op_name d.cell.op) d.cell.asset
                  d.cell.mode Region.pp d.region (cls_name d.before)
                  (cls_name d.after))
               ~asset:d.cell.asset ~subject:d.cell.subject ~mode:d.cell.mode
               ~op:d.cell.op
               ?msg_range:(Region.span d.region)))
      deltas
    |> List.sort_uniq Diagnostic.compare
  in
  { old_db; new_db; strategy; deltas; diagnostics }

let count_direction dir r =
  List.length (List.filter (fun d -> d.direction = dir) r.deltas)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let direction_name = function
  | Widened -> "widened"
  | Tightened -> "tightened"
  | Changed -> "changed"

let pp_cell ppf (c : cell) =
  Format.fprintf ppf "%s %s %s in %s" c.subject (Ir.op_name c.op) c.asset
    c.mode

let pp_segment ppf s =
  Format.fprintf ppf "%s%s on %a" (cls_name s.cls)
    (match s.rule with
    | None -> " (default)"
    | Some (r : Ir.rule) -> Printf.sprintf " by rule #%d" r.idx)
    Region.pp s.region

let pp_delta ppf d =
  Format.fprintf ppf "%s: %a: %s -> %s on %a"
    (direction_name d.direction)
    pp_cell d.cell (cls_name d.before) (cls_name d.after) Region.pp d.region

let pp_report ppf r =
  let c = r.completeness in
  Format.fprintf ppf
    "verify %s v%d (%s): %d cells over %d modes x %d subjects x %d assets@."
    r.db.Ir.name r.db.Ir.version (strategy_name r.strategy) c.cells
    (List.length r.universe.modes)
    (List.length r.universe.subjects)
    (List.length r.universe.assets);
  Format.fprintf ppf
    "completeness: %d explicit, %d partial, %d silent cell(s); default %s \
     decides %d message point(s)@."
    c.explicit_cells c.partial_cells c.silent_cells
    (Ast.decision_name c.default)
    c.default_points;
  Format.fprintf ppf "proof: %d witness(es) over %d oracle assignment(s): %s@."
    r.proof.witnesses r.proof.assignments
    (if proved r.proof then "interpreted = compiled = symbolic (proved)"
     else
       Printf.sprintf "%d divergence(s) - toolchain bug"
         (List.length r.proof.divergences));
  (match r.obligations with
  | [] -> ()
  | l ->
      Format.fprintf ppf "obligations: %d/%d discharged@."
        (List.length (List.filter discharged l))
        (List.length l);
      List.iter
        (fun s ->
          Format.fprintf ppf "  %s %a@."
            (if discharged s then "[ok]" else "[VIOLATED]")
            Obligation.pp s.obligation)
        l);
  List.iter (fun d -> Format.fprintf ppf "%a@." Diagnostic.pp d) r.diagnostics

let pp_diff_report ppf r =
  Format.fprintf ppf
    "semantic diff %s v%d -> v%d (%s): %d delta(s): %d widened, %d \
     tightened, %d changed@."
    r.new_db.Ir.name r.old_db.Ir.version r.new_db.Ir.version
    (strategy_name r.strategy)
    (List.length r.deltas)
    (count_direction Widened r)
    (count_direction Tightened r)
    (count_direction Changed r);
  List.iter (fun d -> Format.fprintf ppf "  %a@." pp_delta d) r.deltas

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let cls_to_json = function
  | Deny -> Json.Obj [ ("class", Json.String "deny") ]
  | Allow -> Json.Obj [ ("class", Json.String "allow") ]
  | Rated r ->
      Json.Obj
        [
          ("class", Json.String "allow-rated");
          ("count", Json.Int r.Ast.count);
          ("window_ms", Json.Int r.Ast.window_ms);
        ]

let status_to_json (s : obligation_status) =
  let o = s.obligation in
  Json.Obj
    [
      ("threat", Json.String o.Obligation.threat_id);
      ("asset", Json.String o.asset);
      ("operation", Json.String (Threat.operation_name o.operation));
      ("modes", Json.List (List.map (fun m -> Json.String m) o.modes));
      ( "exempt_subjects",
        Json.List (List.map (fun s -> Json.String s) o.exempt_subjects) );
      ("residual", Json.Bool o.residual);
      ("discharged", Json.Bool (discharged s));
      ( "violations",
        Json.List
          (List.map
             (fun v ->
               Json.Obj
                 [
                   ("subject", Json.String v.subject);
                   ("mode", Json.String v.mode);
                   ("rated", Json.Bool v.rated);
                   ("rules", Json.List (List.map (fun i -> Json.Int i) v.rules));
                   ("region", Region.to_json v.region);
                 ])
             s.violations) );
    ]

let report_to_json r =
  let c = r.completeness in
  let p = r.proof in
  Json.Obj
    [
      ("policy", Json.String r.db.Ir.name);
      ("version", Json.Int r.db.Ir.version);
      ("strategy", Json.String (strategy_name r.strategy));
      ( "universe",
        Json.Obj
          [
            ("modes", Json.Int (List.length r.universe.modes));
            ("subjects", Json.Int (List.length r.universe.subjects));
            ("assets", Json.Int (List.length r.universe.assets));
          ] );
      ( "completeness",
        Json.Obj
          [
            ("cells", Json.Int c.cells);
            ("explicit", Json.Int c.explicit_cells);
            ("partial", Json.Int c.partial_cells);
            ("silent", Json.Int c.silent_cells);
            ("default", Json.String (Ast.decision_name c.default));
            ("default_points", Json.Int c.default_points);
          ] );
      ( "proof",
        Json.Obj
          [
            ("proved", Json.Bool (proved p));
            ("witnesses", Json.Int p.witnesses);
            ("assignments", Json.Int p.assignments);
            ("unreachable", Json.Int p.unreachable);
            ("truncated_cells", Json.Int p.truncated);
            ("divergences", Json.Int (List.length p.divergences));
          ] );
      ( "mergeable_modes",
        Json.List
          (List.map
             (fun cls -> Json.List (List.map (fun m -> Json.String m) cls))
             r.mergeable) );
      ("dead_rules", Json.List (List.map (fun i -> Json.Int i) r.dead_rules));
      ("obligations", Json.List (List.map status_to_json r.obligations));
      ( "diagnostics",
        Json.List (List.map Diagnostic.to_json r.diagnostics) );
      ( "summary",
        Json.Obj
          [
            ("errors", Json.Int (Diagnostic.count Diagnostic.Error r.diagnostics));
            ( "warnings",
              Json.Int (Diagnostic.count Diagnostic.Warning r.diagnostics) );
            ("infos", Json.Int (Diagnostic.count Diagnostic.Info r.diagnostics));
          ] );
    ]

let delta_to_json d =
  Json.Obj
    [
      ("mode", Json.String d.cell.mode);
      ("subject", Json.String d.cell.subject);
      ("asset", Json.String d.cell.asset);
      ("op", Json.String (Ir.op_name d.cell.op));
      ("before", cls_to_json d.before);
      ("after", cls_to_json d.after);
      ("direction", Json.String (direction_name d.direction));
      ("region", Region.to_json d.region);
    ]

let diff_to_json r =
  Json.Obj
    [
      ("policy", Json.String r.new_db.Ir.name);
      ("old_version", Json.Int r.old_db.Ir.version);
      ("new_version", Json.Int r.new_db.Ir.version);
      ("strategy", Json.String (strategy_name r.strategy));
      ("deltas", Json.List (List.map delta_to_json r.deltas));
      ( "summary",
        Json.Obj
          [
            ("total", Json.Int (List.length r.deltas));
            ("widened", Json.Int (count_direction Widened r));
            ("tightened", Json.Int (count_direction Tightened r));
            ("changed", Json.Int (count_direction Changed r));
          ] );
      ("diagnostics", Json.List (List.map Diagnostic.to_json r.diagnostics));
    ]
