(** Semantic policy verification: symbolic analysis of the decision space.

    A policy's behaviour on one access {!cell} is a total function from
    the message dimension to decisions.  {!partition} computes that
    function exactly as a list of disjoint {!Region}s — no sampling — by
    scanning the strategy-folded rule list once, mirroring precisely what
    both the interpreted engine and the compiled {!Table} evaluate.  On
    top of the partitions:

    - {!analyse} measures default-decision completeness, {e proves}
      interpreter/compiled/symbolic agreement by evaluating both real
      engines at every region boundary under every reachable rate-budget
      state (SP014 on divergence), and finds dead rules (SP011) and
      mergeable modes (SP010);
    - {!diff} computes the exact decision-region delta between two policy
      versions (SP012 when an update widens an allow region);
    - threat-derived {!Secpol_threat.Obligation}s are checked against the
      partitions (SP013).

    Rate-limited allows are handled with an availability oracle: each
    budget state of a cell's rated rules is enumerated, so the analysis is
    exact in every state, not just the steady one. *)

type cell = { mode : string; subject : string; asset : string; op : Ir.op }
(** One access-decision cell: the message id is the remaining free
    dimension, analysed symbolically. *)

(** Decision class of a region: rate-limited allows are distinguished
    because they admit only bounded traffic and can fall through when
    exhausted. *)
type cls = Deny | Allow | Rated of Ast.rate

type segment = { region : Region.t; cls : cls; rule : Ir.rule option }
(** A maximal region decided by one rule ([None] = the policy default). *)

val cls_name : cls -> string

val strategy_name : Engine.strategy -> string

(** {2 Universe} *)

type universe = {
  modes : string list;
  subjects : string list;
  assets : string list;
}

val other : string
(** The synthetic universe member ["(other)"] standing for every name the
    policy does not mention — it exercises the compiled table's
    unknown-mode bit, the wildcard subject buckets and the pure-default
    asset path, and can never collide with a parsed identifier. *)

val universe :
  ?modes:string list ->
  ?subjects:string list ->
  ?assets:string list ->
  Ir.db ->
  universe
(** Universe of a policy: the given (or mentioned) names per dimension,
    sorted, each extended with {!other}. *)

val cells : universe -> cell list
(** All cells of the universe, in deterministic order, both operations. *)

(** {2 Symbolic partitions} *)

val partition : strategy:Engine.strategy -> Ir.db -> cell -> segment list
(** The cell's exact steady-state decision function (all rate budgets
    available): disjoint segments covering the whole message dimension,
    in strategy-folded rule order, default segment last. *)

val class_map : segment list -> (cls * Region.t) list
(** Canonical semantic form: union of regions per decision class, ordered
    by class — two cells behave identically iff their class maps are
    equal. *)

val class_maps_equal : (cls * Region.t) list -> (cls * Region.t) list -> bool

(** {2 Reports} *)

type completeness = {
  cells : int;
  explicit_cells : int;  (** no point falls to the default *)
  partial_cells : int;  (** some message ids fall to the default *)
  silent_cells : int;  (** every point falls to the default *)
  default : Ast.decision;
  default_points : int;  (** total message points decided by the default *)
}

type proof = {
  cells : int;
  assignments : int;  (** rate-oracle states enumerated *)
  witnesses : int;  (** boundary requests evaluated on both engines *)
  unreachable : int;
      (** oracle states no concrete request sequence could reproduce *)
  truncated : int;  (** cells whose oracle powerset was truncated *)
  divergences : Diagnostic.t list;  (** SP014; empty on a proved policy *)
}

val proved : proof -> bool

type violation = {
  subject : string;
  mode : string;
  region : Region.t;  (** the message region the policy allows *)
  rated : bool;  (** every allowing segment is rate-limited *)
  rules : int list;  (** allowing rule indices; [[]] = default allow *)
}

type obligation_status = {
  obligation : Secpol_threat.Obligation.t;
  violations : violation list;
}

val discharged : obligation_status -> bool

type report = {
  db : Ir.db;
  strategy : Engine.strategy;
  universe : universe;
  completeness : completeness;
  proof : proof;
  mergeable : string list list;  (** SP010 mode classes *)
  dead_rules : int list;  (** SP011 rule indices *)
  obligations : obligation_status list;
  diagnostics : Diagnostic.t list;
      (** SP010 + SP011 + SP013 + SP014, sorted *)
}

val analyse :
  ?strategy:Engine.strategy ->
  ?modes:string list ->
  ?subjects:string list ->
  ?assets:string list ->
  ?obligations:Secpol_threat.Obligation.t list ->
  Ir.db ->
  report
(** The full semantic verification (strategy defaults to
    [Deny_overrides]).  Engine agreement is proved by construction of the
    partitions {e and} re-checked concretely: both real engines are
    evaluated at every region corner, with rate budgets drained to match
    each oracle state. *)

(** {2 Differential update analysis} *)

type direction =
  | Widened  (** the new version is strictly more permissive here *)
  | Tightened  (** strictly less permissive *)
  | Changed  (** incomparable (two different rate limits) *)

type delta = {
  cell : cell;
  before : cls;
  after : cls;
  region : Region.t;
  direction : direction;
}

type diff_report = {
  old_db : Ir.db;
  new_db : Ir.db;
  strategy : Engine.strategy;
  deltas : delta list;
  diagnostics : Diagnostic.t list;  (** SP012, one per widened delta *)
}

val diff :
  ?strategy:Engine.strategy ->
  ?modes:string list ->
  ?subjects:string list ->
  ?assets:string list ->
  Ir.db ->
  Ir.db ->
  diff_report
(** Exact decision-space difference over the union of both versions'
    universes.  Empty iff the versions are semantically identical; a
    default-decision change surfaces on the synthetic {!other} asset. *)

val direction_name : direction -> string

val count_direction : direction -> diff_report -> int

(** {2 Rendering} *)

val pp_cell : Format.formatter -> cell -> unit

val pp_segment : Format.formatter -> segment -> unit

val pp_delta : Format.formatter -> delta -> unit

val pp_report : Format.formatter -> report -> unit

val pp_diff_report : Format.formatter -> diff_report -> unit

val report_to_json : report -> Json.t

val diff_to_json : diff_report -> Json.t
