module Obs = Secpol_obs

type key = { source : string; target : string; cls : string }

type t = {
  capacity : int;
  table : (key, string list) Hashtbl.t;
  mutable generation : int;
  mutable table_generation : int;
  hits : Obs.Counter.t;
  misses : Obs.Counter.t;
  flushes : Obs.Counter.t;
}

let create ?(capacity = 512) () =
  if capacity <= 0 then invalid_arg "Avc.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create 64;
    generation = 0;
    table_generation = 0;
    hits = Obs.Counter.create ();
    misses = Obs.Counter.create ();
    flushes = Obs.Counter.create ();
  }

let flush t =
  Hashtbl.reset t.table;
  Obs.Counter.incr t.flushes

let lookup t db ~source ~target ~cls =
  if t.table_generation <> t.generation then begin
    flush t;
    t.table_generation <- t.generation
  end;
  let key = { source; target; cls } in
  match Hashtbl.find_opt t.table key with
  | Some av ->
      Obs.Counter.incr t.hits;
      av
  | None ->
      Obs.Counter.incr t.misses;
      let av = Policy_db.compute_av db ~source ~target ~cls in
      if Hashtbl.length t.table >= t.capacity then flush t;
      Hashtbl.replace t.table key av;
      av

let invalidate t = t.generation <- t.generation + 1

type stats = { hits : int; misses : int; flushes : int }

let stats (t : t) =
  {
    hits = Obs.Counter.value t.hits;
    misses = Obs.Counter.value t.misses;
    flushes = Obs.Counter.value t.flushes;
  }

let attach_obs (t : t) reg =
  Obs.Registry.register_counter reg "selinux.avc.hits" t.hits;
  Obs.Registry.register_counter reg "selinux.avc.misses" t.misses;
  Obs.Registry.register_counter reg "selinux.avc.flushes" t.flushes;
  Obs.Registry.register_gauge reg "selinux.avc.occupancy" (fun () ->
      float_of_int (Hashtbl.length t.table));
  Obs.Registry.register_gauge reg "selinux.avc.hit_rate" (fun () ->
      let total = Obs.Counter.value t.hits + Obs.Counter.value t.misses in
      if total = 0 then 0.0
      else float_of_int (Obs.Counter.value t.hits) /. float_of_int total)

let hit_rate (t : t) =
  let hits = Obs.Counter.value t.hits in
  let total = hits + Obs.Counter.value t.misses in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total
