(** Access vector cache.

    The security server's rule walk is slow; the AVC memoises the computed
    permission vector per (source type, target type, class).  A policy
    reload bumps the generation counter, logically invalidating every
    cached entry at once.

    Hit/miss/flush counts are kept in {!Secpol_obs.Counter} cells so the
    same instruments back both the legacy {!stats} record and a shared
    telemetry registry (see {!attach_obs}). *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 512) bounds retained entries; on overflow the cache
    is reset (a simple, predictable policy). *)

val lookup :
  t -> Policy_db.t -> source:string -> target:string -> cls:string -> string list
(** Cached {!Policy_db.compute_av}. *)

val invalidate : t -> unit
(** Call on policy reload. *)

type stats = { hits : int; misses : int; flushes : int }

val stats : t -> stats

val attach_obs : t -> Secpol_obs.Registry.t -> unit
(** Export the hit/miss/flush counters plus [occupancy] and [hit_rate]
    gauges under [selinux.avc.*]. *)

val hit_rate : t -> float
(** hits / (hits + misses); 0. before any lookup. *)
