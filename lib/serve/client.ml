module Ir = Secpol_policy.Ir

type t = { fd : Unix.file_descr; mutable next_id : int }

exception Protocol of string

(* The daemon unlinks-then-binds its socket at startup, so a client
   racing the boot sees ENOENT/ECONNREFUSED for a moment; retrying over
   a short window makes "start daemon; connect" scriptable without
   sleeps. *)
let rec connect_retrying ~attempts ~backoff_s addr =
  let fd =
    Unix.socket
      (match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET)
      Unix.SOCK_STREAM 0
  in
  match Unix.connect fd addr with
  | () -> fd
  | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _)
    when attempts > 1 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Unix.sleepf backoff_s with Unix.Unix_error _ -> ());
      connect_retrying ~attempts:(attempts - 1) ~backoff_s addr
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

let connect ?(attempts = 50) ?(backoff_s = 0.05) path =
  { fd = connect_retrying ~attempts ~backoff_s (Unix.ADDR_UNIX path); next_id = 1 }

let connect_tcp ?(attempts = 50) ?(backoff_s = 0.05) ~port host =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  { fd = connect_retrying ~attempts ~backoff_s addr; next_id = 1 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let roundtrip t msg =
  Wire.output_msg t.fd msg;
  Wire.input_msg t.fd

let fresh_id t =
  let id = t.next_id in
  t.next_id <- (id + 1) land 0xFFFFFFFF;
  id

type decision_batch = {
  degraded : bool;
  shed : bool;
  allows : bool array;
}

let decide t reqs =
  let id = fresh_id t in
  match roundtrip t (Wire.Decide_req { id; reqs }) with
  | Wire.Decide_resp { id = rid; degraded; shed; allows } when rid = id ->
      if Array.length allows <> Array.length reqs then
        raise (Protocol "decide: answer count mismatch");
      { degraded; shed; allows }
  | Wire.Error_resp { message; _ } -> raise (Protocol message)
  | m -> raise (Protocol ("decide: unexpected " ^ Wire.type_name m))

let decide_one t req =
  let b = decide t [| req |] in
  b.allows.(0)

let stats t =
  let id = fresh_id t in
  match roundtrip t (Wire.Stats_req { id }) with
  | Wire.Stats_resp { id = rid; body } when rid = id -> body
  | Wire.Error_resp { message; _ } -> raise (Protocol message)
  | m -> raise (Protocol ("stats: unexpected " ^ Wire.type_name m))

type reload_outcome = {
  status : Wire.reload_status;
  widened : int;
  tightened : int;
  changed : int;
  epoch : int;
  detail : string;
}

let reload t ?(allow_widen = false) source =
  let id = fresh_id t in
  match roundtrip t (Wire.Reload_req { id; allow_widen; source }) with
  | Wire.Reload_resp { id = rid; status; widened; tightened; changed; epoch; detail }
    when rid = id ->
      { status; widened; tightened; changed; epoch; detail }
  | Wire.Error_resp { message; _ } -> raise (Protocol message)
  | m -> raise (Protocol ("reload: unexpected " ^ Wire.type_name m))
