(** A minimal blocking client for {!Daemon}, used by the [secpold] CLI
    subcommands, the tests and the benchmark driver.  One request in
    flight per connection; open several connections for concurrency. *)

module Ir = Secpol_policy.Ir

type t

exception Protocol of string
(** The daemon answered something other than the expected response. *)

val connect : ?attempts:int -> ?backoff_s:float -> string -> t
(** Connect to a Unix-domain socket path, retrying [ECONNREFUSED] and
    [ENOENT] over [attempts] × [backoff_s] (default 50 × 50 ms) so a
    client can race the daemon's startup. *)

val connect_tcp : ?attempts:int -> ?backoff_s:float -> port:int -> string -> t

val close : t -> unit

type decision_batch = {
  degraded : bool;
      (** some answers are fail-safe denies (stall or watchdog) *)
  shed : bool;  (** some answers are fail-safe denies (admission shed) *)
  allows : bool array;  (** answer [i] is for request [i] *)
}

val decide : t -> Ir.request array -> decision_batch
(** @raise Protocol on a mismatched or unexpected response. *)

val decide_one : t -> Ir.request -> bool

val stats : t -> string
(** The daemon's stats report, as a JSON string. *)

type reload_outcome = {
  status : Wire.reload_status;
  widened : int;
  tightened : int;
  changed : int;
  epoch : int;
  detail : string;
}

val reload : t -> ?allow_widen:bool -> string -> reload_outcome
(** Ship policy {e source text} to the daemon for a gated hot swap.
    [allow_widen] (default false) overrides the widening refusal. *)
