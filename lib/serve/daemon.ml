module Ir = Secpol_policy.Ir
module Ast = Secpol_policy.Ast
module Batch = Secpol_policy.Batch
module Engine = Secpol_policy.Engine
module Table = Secpol_policy.Table
module Compile = Secpol_policy.Compile
module Verify = Secpol_policy.Verify
module Json = Secpol_policy.Json
module Obs_json = Secpol_policy.Obs_json
module Pool = Secpol_par.Pool
module Partition = Secpol_par.Partition
module Obs = Secpol_obs
module Registry = Secpol_obs.Registry
module Clock = Secpol_obs.Clock

type config = {
  socket_path : string;
  tcp_port : int option;
  domains : int;
  strategy : Engine.strategy;
  cache : bool;
  queue_capacity : int;
  watchdog_deadline_s : float;
  admission_retries : int;
  retry_backoff_s : float;
}

let default_config =
  {
    socket_path = "secpold.sock";
    tcp_port = None;
    domains = 1;
    strategy = Engine.Deny_overrides;
    cache = true;
    queue_capacity = 1024;
    watchdog_deadline_s = 1.0;
    admission_retries = 3;
    retry_backoff_s = 0.0005;
  }

type t = {
  config : config;
  pool : Pool.t;
  registry : Registry.t;
  started_at : float;
  stop : bool Atomic.t;
  reload_mu : Mutex.t; (* serialises compile + gate + swap *)
  conns_mu : Mutex.t;
  mutable conns : Unix.file_descr list;
  mutable conn_threads : Thread.t list;
  mutable listeners : Unix.file_descr list;
  mutable accepters : Thread.t list;
  mutable stopped : bool;
  c_connections : Obs.Counter.t;
  c_requests : Obs.Counter.t;
  c_batches : Obs.Counter.t;
  c_shed : Obs.Counter.t;
  c_failsafe : Obs.Counter.t;
  c_watchdog_trips : Obs.Counter.t;
  c_wire_errors : Obs.Counter.t;
  c_reloads : Obs.Counter.t;
  c_reloads_refused : Obs.Counter.t;
}

let zero_stats : Engine.stats =
  {
    decisions = 0;
    allows = 0;
    denies = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_flushes = 0;
  }

let add_stats (a : Engine.stats) (b : Engine.stats) : Engine.stats =
  {
    decisions = a.decisions + b.decisions;
    allows = a.allows + b.allows;
    denies = a.denies + b.denies;
    cache_hits = a.cache_hits + b.cache_hits;
    cache_misses = a.cache_misses + b.cache_misses;
    cache_flushes = a.cache_flushes + b.cache_flushes;
  }

(* ------------------------------------------------------------------ *)
(* Deciding                                                            *)
(* ------------------------------------------------------------------ *)

(* One shard's slice of a client batch, run on the shard's worker: pack
   into the arena, decide in bulk.  A stalled engine answers nothing —
   the caller turns that into fail-safe denies. *)
let decide_job reqs idxs now (w : Pool.worker) =
  let n = Array.length idxs in
  let batch = Batch.create ~capacity:(max 1 n) () in
  Array.iter (fun i -> Batch.push ~now batch reqs.(i)) idxs;
  let out = Array.make n Ast.Deny in
  match Engine.decide_batch (Pool.worker_engine w) batch ~out with
  | () -> Ok out
  | exception Engine.Unavailable -> Error `Stalled

(* Admission follows the gateway's retry-then-shed discipline: a full
   ring gets a few exponentially backed-off retries (the worker drains
   in microseconds when merely busy), then the batch is shed — answered
   immediately with fail-safe denies — instead of queueing the daemon's
   memory without bound. *)
let submit_with_retry t ~shard job =
  let rec go attempt =
    match Pool.try_submit t.pool ~shard job with
    | Some ticket -> Some ticket
    | None ->
        if attempt >= t.config.admission_retries then None
        else begin
          (try
             Unix.sleepf
               (t.config.retry_backoff_s *. float_of_int (1 lsl min attempt 8))
           with Unix.Unix_error _ -> ());
          go (attempt + 1)
        end
  in
  go 0

let handle_decide t id reqs =
  let n = Array.length reqs in
  let allows = Array.make n false in
  let degraded = ref false in
  let shed = ref false in
  if n > 0 then begin
    let now = Clock.now () -. t.started_at in
    let shards =
      Partition.assign_by ~shards:(Pool.domains t.pool)
        (fun (r : Ir.request) -> r.subject)
        reqs
    in
    let pending = ref [] in
    Array.iteri
      (fun shard idxs ->
        if Array.length idxs > 0 then
          match submit_with_retry t ~shard (decide_job reqs idxs now) with
          | Some ticket -> pending := (idxs, ticket) :: !pending
          | None ->
              (* denied by default: [allows] already reads false *)
              shed := true;
              Obs.Counter.add t.c_shed (Array.length idxs))
      shards;
    List.iter
      (fun (idxs, ticket) ->
        match
          Pool.await_timeout ticket ~timeout_s:t.config.watchdog_deadline_s
        with
        | Some (Ok (Ok out)) ->
            Array.iteri (fun k i -> allows.(i) <- out.(k) = Ast.Allow) idxs
        | Some (Ok (Error `Stalled)) | Some (Error _) ->
            (* the shard answered "no answer": fail safe, deny the slice *)
            degraded := true;
            Obs.Counter.add t.c_failsafe (Array.length idxs)
        | None ->
            (* watchdog: the shard missed its deadline — answer denies
               now rather than hang the client behind a wedged worker;
               the late result, if any, is discarded *)
            degraded := true;
            Obs.Counter.incr t.c_watchdog_trips;
            Obs.Counter.add t.c_failsafe (Array.length idxs))
      !pending
  end;
  Obs.Counter.add t.c_requests n;
  Obs.Counter.incr t.c_batches;
  Wire.Decide_resp { id; degraded = !degraded; shed = !shed; allows }

(* ------------------------------------------------------------------ *)
(* Reload                                                              *)
(* ------------------------------------------------------------------ *)

let handle_reload t id ~allow_widen source =
  Mutex.lock t.reload_mu;
  let resp =
    match Compile.of_source source with
    | Error e ->
        Wire.Reload_resp
          {
            id;
            status = Wire.Rejected;
            widened = 0;
            tightened = 0;
            changed = 0;
            epoch = Pool.epoch t.pool;
            detail = e;
          }
    | Ok new_db ->
        let old_db = Pool.db t.pool in
        let report = Verify.diff ~strategy:t.config.strategy old_db new_db in
        let widened = Verify.count_direction Verify.Widened report in
        let tightened = Verify.count_direction Verify.Tightened report in
        let changed = Verify.count_direction Verify.Changed report in
        if widened > 0 && not allow_widen then begin
          Obs.Counter.incr t.c_reloads_refused;
          Wire.Reload_resp
            {
              id;
              status = Wire.Refused_widened;
              widened;
              tightened;
              changed;
              epoch = Pool.epoch t.pool;
              detail =
                Printf.sprintf
                  "update widens %d decision region(s); pass allow_widen to \
                   accept"
                  widened;
            }
        end
        else begin
          (* Compile off-path, publish atomically, and only then ack:
             any client that has seen this response can no longer
             observe a pre-swap decision. *)
          let table = Table.compile ~strategy:t.config.strategy new_db in
          let epoch = Pool.swap t.pool table new_db in
          Obs.Counter.incr t.c_reloads;
          Wire.Reload_resp
            {
              id;
              status = Wire.Swapped;
              widened;
              tightened;
              changed;
              epoch;
              detail =
                Printf.sprintf "%s v%d" new_db.Ir.name new_db.Ir.version;
            }
        end
  in
  Mutex.unlock t.reload_mu;
  resp

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let engine_stats_json (s : Engine.stats) =
  Json.Obj
    [
      ("decisions", Json.Int s.decisions);
      ("allows", Json.Int s.allows);
      ("denies", Json.Int s.denies);
      ("cache_hits", Json.Int s.cache_hits);
      ("cache_misses", Json.Int s.cache_misses);
      ("cache_flushes", Json.Int s.cache_flushes);
    ]

let stats_json t =
  let domains = Pool.domains t.pool in
  let merged = Registry.create () in
  Registry.merge_into ~into:merged t.registry;
  let engine = ref zero_stats in
  let missing = ref 0 in
  (* Each shard snapshots itself as a job, so the snapshot reads
     quiesced worker state; a wedged shard times out and is reported
     missing instead of wedging the scrape. *)
  for shard = 0 to domains - 1 do
    match Pool.try_submit t.pool ~shard Pool.worker_snapshot with
    | None -> incr missing
    | Some ticket -> (
        match
          Pool.await_timeout ticket ~timeout_s:t.config.watchdog_deadline_s
        with
        | Some (Ok (stats, registry)) ->
            engine := add_stats !engine stats;
            Registry.merge_into ~into:merged registry
        | Some (Error _) | None -> incr missing)
  done;
  let db = Pool.db t.pool in
  Json.Obj
    [
      ("schema", Json.Int 1);
      ("service", Json.String "secpold");
      ("policy", Json.String db.Ir.name);
      ("policy_version", Json.Int db.Ir.version);
      ("epoch", Json.Int (Pool.epoch t.pool));
      ("domains", Json.Int domains);
      ("missing_shards", Json.Int !missing);
      ("uptime_s", Json.Float (Clock.now () -. t.started_at));
      ("connections", Json.Int (Obs.Counter.value t.c_connections));
      ("requests", Json.Int (Obs.Counter.value t.c_requests));
      ("batches", Json.Int (Obs.Counter.value t.c_batches));
      ("shed", Json.Int (Obs.Counter.value t.c_shed));
      ("failsafe", Json.Int (Obs.Counter.value t.c_failsafe));
      ("watchdog_trips", Json.Int (Obs.Counter.value t.c_watchdog_trips));
      ("wire_errors", Json.Int (Obs.Counter.value t.c_wire_errors));
      ("reloads", Json.Int (Obs.Counter.value t.c_reloads));
      ("reloads_refused", Json.Int (Obs.Counter.value t.c_reloads_refused));
      ("engine", engine_stats_json !engine);
      ("metrics", Obs_json.registry merged);
    ]

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let drop_conn t fd =
  Mutex.lock t.conns_mu;
  t.conns <- List.filter (fun c -> c <> fd) t.conns;
  Mutex.unlock t.conns_mu;
  close_quiet fd

let handle_msg t = function
  | Wire.Decide_req { id; reqs } -> Some (handle_decide t id reqs)
  | Wire.Stats_req { id } ->
      Some (Wire.Stats_resp { id; body = Json.to_string (stats_json t) })
  | Wire.Reload_req { id; allow_widen; source } ->
      Some (handle_reload t id ~allow_widen source)
  | Wire.Decide_resp _ | Wire.Stats_resp _ | Wire.Reload_resp _
  | Wire.Error_resp _ ->
      (* a response type from a client is a protocol violation *)
      None

let connection_loop t fd =
  let rec loop () =
    match Wire.input_msg fd with
    | exception End_of_file -> drop_conn t fd
    | exception Wire.Malformed _ ->
        (* fail closed: count it, drop the connection, keep serving *)
        Obs.Counter.incr t.c_wire_errors;
        drop_conn t fd
    | exception Unix.Unix_error _ -> drop_conn t fd
    | msg -> (
        match handle_msg t msg with
        | None ->
            Obs.Counter.incr t.c_wire_errors;
            drop_conn t fd
        | Some resp -> (
            match Wire.output_msg fd resp with
            | () -> loop ()
            | exception (Unix.Unix_error _ | Sys_error _) -> drop_conn t fd))
  in
  loop ()

(* A blocked [accept] is not reliably woken by closing the listener from
   another thread, so the loop polls readability with a short [select]
   timeout and re-checks the stop flag between polls — shutdown latency
   is bounded by the poll period, with no wake-up trickery. *)
let accept_loop t listener =
  let rec loop () =
    if not (Atomic.get t.stop) then begin
      match Unix.select [ listener ] [] [] 0.1 with
      | exception Unix.Unix_error (EINTR, _, _) -> loop ()
      | [], _, _ -> loop ()
      | _ :: _, _, _ ->
          (match Unix.accept listener with
          | exception Unix.Unix_error _ -> ()
          | fd, _ ->
              Obs.Counter.incr t.c_connections;
              let th = Thread.create (fun () -> connection_loop t fd) () in
              Mutex.lock t.conns_mu;
              t.conns <- fd :: t.conns;
              t.conn_threads <- th :: t.conn_threads;
              Mutex.unlock t.conns_mu);
          loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let start ?(config = default_config) db =
  if config.domains < 1 then invalid_arg "Daemon.start: domains < 1";
  let table = Table.compile ~strategy:config.strategy db in
  let pool =
    Pool.create ~cache:config.cache ~queue_capacity:config.queue_capacity
      ~domains:config.domains table db
  in
  let registry = Registry.create () in
  let counter name =
    let c = Obs.Counter.create () in
    Registry.register_counter registry ("serve." ^ name) c;
    c
  in
  let t =
    {
      config;
      pool;
      registry;
      started_at = Clock.now ();
      stop = Atomic.make false;
      reload_mu = Mutex.create ();
      conns_mu = Mutex.create ();
      conns = [];
      conn_threads = [];
      listeners = [];
      accepters = [];
      stopped = false;
      c_connections = counter "connections";
      c_requests = counter "requests";
      c_batches = counter "batches";
      c_shed = counter "shed";
      c_failsafe = counter "failsafe";
      c_watchdog_trips = counter "watchdog_trips";
      c_wire_errors = counter "wire_errors";
      c_reloads = counter "reloads";
      c_reloads_refused = counter "reloads_refused";
    }
  in
  let listeners =
    listen_unix config.socket_path
    :: (match config.tcp_port with
       | None -> []
       | Some port -> [ listen_tcp port ])
  in
  t.listeners <- listeners;
  t.accepters <-
    List.map (fun l -> Thread.create (fun () -> accept_loop t l) ()) listeners;
  t

let epoch t = Pool.epoch t.pool

let wire_errors t = Obs.Counter.value t.c_wire_errors

let watchdog_trips t = Obs.Counter.value t.c_watchdog_trips

let shed t = Obs.Counter.value t.c_shed

let pool t = t.pool

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stop true;
    (* accept loops notice the flag at their next poll *)
    List.iter Thread.join t.accepters;
    List.iter close_quiet t.listeners;
    (* [shutdown] (not [close]) wakes a connection thread blocked in
       read with EOF; each thread then closes its own fd and exits, so
       no fd is ever closed under a thread still using it *)
    Mutex.lock t.conns_mu;
    let conns = t.conns and threads = t.conn_threads in
    t.conn_threads <- [];
    Mutex.unlock t.conns_mu;
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    List.iter Thread.join threads;
    Pool.shutdown t.pool;
    try Unix.unlink t.config.socket_path with Unix.Unix_error _ -> ()
  end
