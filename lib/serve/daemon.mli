(** The [secpold] decision daemon: a long-running enforcement point.

    The paper's runtime-enforcement argument only holds if decisions are
    served {e continuously while policies change underneath} — the
    mitigation path for a fielded vulnerability is a policy update, not
    a recall.  The daemon therefore never stops answering:

    - decisions run on a persistent {!Secpol_par.Pool} — one pinned
      worker per shard, requests routed by subject so rate budgets stay
      shard-local;
    - a reload compiles the new policy {e off-path}, gates it with
      {!Secpol_policy.Verify.diff} (widenings are refused unless
      explicitly allowed), then publishes it with one atomic pointer
      swap — zero dropped requests, and no decision made after the ack
      is stale;
    - overload sheds at admission with fail-safe denies (the gateway's
      retry-then-shed discipline), and a per-batch watchdog answers
      denies when a shard misses its deadline rather than hanging the
      client;
    - undecodable input is counted ([serve.wire_errors]) and the
      connection dropped — the daemon itself never dies from a frame.

    Transport is a Unix-domain socket, plus an optional loopback TCP
    port; one thread per connection, messages framed by {!Wire}. *)

type config = {
  socket_path : string;
  tcp_port : int option;  (** loopback TCP listener when [Some] *)
  domains : int;  (** worker shards *)
  strategy : Secpol_policy.Engine.strategy;
  cache : bool;  (** per-worker decision cache *)
  queue_capacity : int;  (** per-shard ring depth (admission bound) *)
  watchdog_deadline_s : float;  (** per-shard answer deadline *)
  admission_retries : int;  (** retries before shedding a full ring *)
  retry_backoff_s : float;  (** base backoff between admission retries *)
}

val default_config : config
(** Unix socket ["secpold.sock"], no TCP, 1 domain, deny-overrides,
    1024-deep rings, 1 s watchdog, 3 admission retries at 0.5 ms base
    backoff. *)

type t

val start : ?config:config -> Secpol_policy.Ir.db -> t
(** Compile the policy, spawn the pool, bind and listen.  Returns with
    every worker ready and the listeners accepting.
    @raise Invalid_argument when [config.domains < 1];
    @raise Unix.Unix_error when a socket cannot be bound. *)

val stop : t -> unit
(** Stop accepting, close every connection, drain and join the pool,
    unlink the Unix socket.  Idempotent. *)

val epoch : t -> int
(** Generation currently being served (1 until the first reload). *)

val wire_errors : t -> int

val watchdog_trips : t -> int

val shed : t -> int
(** Requests answered with shed fail-safe denies at admission. *)

val pool : t -> Secpol_par.Pool.t
(** The serving pool — exposed for tests (stall injection, epoch
    assertions); production callers talk over the socket. *)
