module Ir = Secpol_policy.Ir

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* 16 MiB: far above any sane batch (a request is tens of bytes), far
   below anything that would let a garbage length prefix make the
   daemon allocate itself to death. *)
let max_payload = 16 * 1024 * 1024

let max_batch = 0xFFFF

type reload_status = Swapped | Refused_widened | Rejected

type msg =
  | Decide_req of { id : int; reqs : Ir.request array }
  | Decide_resp of {
      id : int;
      degraded : bool; (* fail-safe denies: a shard stalled or timed out *)
      shed : bool; (* admission shed: the shard ring stayed full *)
      allows : bool array;
    }
  | Stats_req of { id : int }
  | Stats_resp of { id : int; body : string }
  | Reload_req of { id : int; allow_widen : bool; source : string }
  | Reload_resp of {
      id : int;
      status : reload_status;
      widened : int;
      tightened : int;
      changed : int;
      epoch : int;
      detail : string;
    }
  | Error_resp of { id : int; message : string }

(* ------------------------------------------------------------------ *)
(* Encoding (all integers little-endian)                               *)
(* ------------------------------------------------------------------ *)

let add_u8 b v = Buffer.add_uint8 b (v land 0xFF)

let add_u16 b v =
  if v < 0 || v > 0xFFFF then malformed "u16 out of range: %d" v;
  Buffer.add_uint16_le b v

let add_u32 b v =
  if v < 0 || v > 0xFFFFFFFF then malformed "u32 out of range: %d" v;
  Buffer.add_int32_le b (Int32.of_int v)

let add_i32 b v = Buffer.add_int32_le b (Int32.of_int v)

let add_str16 b s =
  add_u16 b (String.length s);
  Buffer.add_string b s

let add_str32 b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let op_tag : Ir.op -> int = function Read -> 0 | Write -> 1

let status_tag = function Swapped -> 0 | Refused_widened -> 1 | Rejected -> 2

(* Payload layout: a type byte, then the body.  Decide requests are
   columnar — all modes, then all subjects, then all assets, then ops,
   then msg ids — mirroring the struct-of-arrays batch arena they are
   decoded into.  Decide responses pack one decision per bit, LSB
   first. *)
let encode_payload msg =
  let b = Buffer.create 64 in
  (match msg with
  | Decide_req { id; reqs } ->
      let n = Array.length reqs in
      if n > max_batch then malformed "batch of %d exceeds %d" n max_batch;
      add_u8 b 1;
      add_u32 b id;
      add_u16 b n;
      Array.iter (fun (r : Ir.request) -> add_str16 b r.mode) reqs;
      Array.iter (fun (r : Ir.request) -> add_str16 b r.subject) reqs;
      Array.iter (fun (r : Ir.request) -> add_str16 b r.asset) reqs;
      Array.iter (fun (r : Ir.request) -> add_u8 b (op_tag r.op)) reqs;
      Array.iter
        (fun (r : Ir.request) ->
          match r.msg_id with
          | None -> add_i32 b (-1)
          | Some m ->
              if m < 0 then malformed "negative msg id %d" m;
              add_i32 b m)
        reqs
  | Decide_resp { id; degraded; shed; allows } ->
      add_u8 b 2;
      add_u32 b id;
      add_u8 b ((if degraded then 1 else 0) lor if shed then 2 else 0);
      let n = Array.length allows in
      add_u16 b n;
      let byte = ref 0 in
      for i = 0 to n - 1 do
        if allows.(i) then byte := !byte lor (1 lsl (i land 7));
        if i land 7 = 7 || i = n - 1 then begin
          add_u8 b !byte;
          byte := 0
        end
      done
  | Stats_req { id } ->
      add_u8 b 3;
      add_u32 b id
  | Stats_resp { id; body } ->
      add_u8 b 4;
      add_u32 b id;
      add_str32 b body
  | Reload_req { id; allow_widen; source } ->
      add_u8 b 5;
      add_u32 b id;
      add_u8 b (if allow_widen then 1 else 0);
      add_str32 b source
  | Reload_resp { id; status; widened; tightened; changed; epoch; detail } ->
      add_u8 b 6;
      add_u32 b id;
      add_u8 b (status_tag status);
      add_u32 b widened;
      add_u32 b tightened;
      add_u32 b changed;
      add_u32 b epoch;
      add_str32 b detail
  | Error_resp { id; message } ->
      add_u8 b 7;
      add_u32 b id;
      add_str32 b message);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

type cursor = { payload : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.payload then
    malformed "truncated payload: need %d at %d of %d" n c.pos
      (String.length c.payload)

let get_u8 c =
  need c 1;
  let v = Char.code c.payload.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u16 c =
  need c 2;
  let v = String.get_uint16_le c.payload c.pos in
  c.pos <- c.pos + 2;
  v

let get_u32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_le c.payload c.pos) land 0xFFFFFFFF in
  c.pos <- c.pos + 4;
  v

let get_i32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_le c.payload c.pos) in
  c.pos <- c.pos + 4;
  v

let get_str16 c =
  let n = get_u16 c in
  need c n;
  let s = String.sub c.payload c.pos n in
  c.pos <- c.pos + n;
  s

let get_str32 c =
  let n = get_u32 c in
  if n > max_payload then malformed "string length %d exceeds frame limit" n;
  need c n;
  let s = String.sub c.payload c.pos n in
  c.pos <- c.pos + n;
  s

let get_op c =
  match get_u8 c with
  | 0 -> Ir.Read
  | 1 -> Ir.Write
  | t -> malformed "unknown op tag %d" t

let get_status c =
  match get_u8 c with
  | 0 -> Swapped
  | 1 -> Refused_widened
  | 2 -> Rejected
  | t -> malformed "unknown reload status %d" t

let decode_payload payload =
  let c = { payload; pos = 0 } in
  let msg =
    match get_u8 c with
    | 1 ->
        let id = get_u32 c in
        let n = get_u16 c in
        let modes = Array.init n (fun _ -> get_str16 c) in
        let subjects = Array.init n (fun _ -> get_str16 c) in
        let assets = Array.init n (fun _ -> get_str16 c) in
        let ops = Array.init n (fun _ -> get_op c) in
        let msg_ids =
          Array.init n (fun _ ->
              match get_i32 c with
              | -1 -> None
              | m when m >= 0 -> Some m
              | m -> malformed "negative msg id %d" m)
        in
        Decide_req
          {
            id;
            reqs =
              Array.init n (fun i ->
                  {
                    Ir.mode = modes.(i);
                    subject = subjects.(i);
                    asset = assets.(i);
                    op = ops.(i);
                    msg_id = msg_ids.(i);
                  });
          }
    | 2 ->
        let id = get_u32 c in
        let flags = get_u8 c in
        let n = get_u16 c in
        let allows = Array.make n false in
        let byte = ref 0 in
        for i = 0 to n - 1 do
          if i land 7 = 0 then byte := get_u8 c;
          allows.(i) <- !byte land (1 lsl (i land 7)) <> 0
        done;
        Decide_resp
          { id; degraded = flags land 1 <> 0; shed = flags land 2 <> 0; allows }
    | 3 -> Stats_req { id = get_u32 c }
    | 4 ->
        let id = get_u32 c in
        Stats_resp { id; body = get_str32 c }
    | 5 ->
        let id = get_u32 c in
        let allow_widen = get_u8 c <> 0 in
        Reload_req { id; allow_widen; source = get_str32 c }
    | 6 ->
        let id = get_u32 c in
        let status = get_status c in
        let widened = get_u32 c in
        let tightened = get_u32 c in
        let changed = get_u32 c in
        let epoch = get_u32 c in
        Reload_resp
          { id; status; widened; tightened; changed; epoch; detail = get_str32 c }
    | 7 ->
        let id = get_u32 c in
        Error_resp { id; message = get_str32 c }
    | t -> malformed "unknown message type %d" t
  in
  if c.pos <> String.length payload then
    malformed "trailing garbage: %d bytes after message"
      (String.length payload - c.pos);
  msg

(* ------------------------------------------------------------------ *)
(* Framing over a file descriptor                                      *)
(* ------------------------------------------------------------------ *)

let really_read fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n = Unix.read fd buf off len in
      if n = 0 then raise End_of_file;
      go (off + n) (len - n)
    end
  in
  go off len

let really_write fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n = Unix.write fd buf off len in
      go (off + n) (len - n)
    end
  in
  go off len

let input_msg fd =
  let header = Bytes.create 4 in
  really_read fd header 0 4;
  let len = Int32.to_int (Bytes.get_int32_le header 0) land 0xFFFFFFFF in
  if len > max_payload then malformed "frame of %d exceeds %d" len max_payload;
  let payload = Bytes.create len in
  really_read fd payload 0 len;
  decode_payload (Bytes.unsafe_to_string payload)

let output_msg fd msg =
  let payload = encode_payload msg in
  let len = String.length payload in
  let frame = Bytes.create (4 + len) in
  Bytes.set_int32_le frame 0 (Int32.of_int len);
  Bytes.blit_string payload 0 frame 4 len;
  really_write fd frame 0 (4 + len)

(* ------------------------------------------------------------------ *)
(* Equality / debug                                                    *)
(* ------------------------------------------------------------------ *)

let equal (a : msg) (b : msg) = a = b

let type_name = function
  | Decide_req _ -> "decide_req"
  | Decide_resp _ -> "decide_resp"
  | Stats_req _ -> "stats_req"
  | Stats_resp _ -> "stats_resp"
  | Reload_req _ -> "reload_req"
  | Reload_resp _ -> "reload_resp"
  | Error_resp _ -> "error_resp"
