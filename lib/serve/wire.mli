(** The daemon's wire format: compact length-prefixed binary frames.

    A frame is a little-endian [u32] payload length followed by the
    payload; a payload is one type byte and the message body.  Decide
    requests ship their batch {e columnar} — all modes, then all
    subjects, assets, ops, message ids — mirroring the struct-of-arrays
    arena ({!Secpol_policy.Batch}) the daemon decodes them into; decide
    responses pack one decision per bit (LSB first, 1 = allow).

    Decoding {e fails closed}: any malformed input — truncated body,
    oversized length prefix, unknown type or op tag, trailing bytes —
    raises {!Malformed}, and the daemon's contract is to count it and
    drop the connection rather than guess. *)

module Ir = Secpol_policy.Ir

exception Malformed of string

val max_payload : int
(** Frames larger than this (16 MiB) are rejected before allocation. *)

val max_batch : int
(** Requests per decide message (65535 — the count is a [u16]). *)

type reload_status =
  | Swapped  (** new generation published *)
  | Refused_widened  (** verify gate: the update widens allow regions *)
  | Rejected  (** parse/compile failure; nothing changed *)

type msg =
  | Decide_req of { id : int; reqs : Ir.request array }
  | Decide_resp of {
      id : int;
      degraded : bool;
          (** answers are fail-safe denies: a shard stalled or missed its
              watchdog deadline *)
      shed : bool;
          (** answers are fail-safe denies: admission shed the batch *)
      allows : bool array;
    }
  | Stats_req of { id : int }
  | Stats_resp of { id : int; body : string }  (** [body] is JSON *)
  | Reload_req of { id : int; allow_widen : bool; source : string }
  | Reload_resp of {
      id : int;
      status : reload_status;
      widened : int;
      tightened : int;
      changed : int;
      epoch : int;  (** generation now serving *)
      detail : string;
    }
  | Error_resp of { id : int; message : string }

val encode_payload : msg -> string
(** The payload bytes (no length prefix).
    @raise Malformed when a field is unrepresentable (batch over
    {!max_batch}, negative message id, out-of-range integer). *)

val decode_payload : string -> msg
(** Inverse of {!encode_payload}: [decode_payload (encode_payload m)]
    equals [m] for every representable message.
    @raise Malformed on anything else. *)

val input_msg : Unix.file_descr -> msg
(** Read one complete frame (blocking).
    @raise Malformed on an oversized prefix or an undecodable payload;
    @raise End_of_file when the peer closed mid-frame or cleanly. *)

val output_msg : Unix.file_descr -> msg -> unit
(** Write one complete frame (blocking). *)

val equal : msg -> msg -> bool

val type_name : msg -> string
