type t = {
  mutable now : float;
  queue : (t -> unit) Event_queue.t;
  root_rng : Rng.t;
  (* bumped by [stop]: a periodic task captures the epoch it was started
     under and stops rescheduling itself once the epochs differ, so a
     callback that is mid-flight when [stop] clears the queue cannot
     resurrect itself afterwards *)
  mutable epoch : int;
}

let create ?(seed = 42L) () =
  {
    now = 0.0;
    queue = Event_queue.create ();
    root_rng = Rng.create seed;
    epoch = 0;
  }

let now t = t.now

let rng t = t.root_rng

let schedule t ~at f =
  if at < t.now then invalid_arg "Engine.schedule: time in the past";
  Event_queue.add t.queue ~time:at f

let schedule_in t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule_in: negative delay";
  schedule t ~at:(t.now +. delay) f

let every t ~period ?until f =
  if period <= 0.0 then invalid_arg "Engine.every: period must be positive";
  let epoch = t.epoch in
  let within at = match until with None -> true | Some u -> at < u in
  let rec tick at sim =
    f sim;
    let next = at +. period in
    if sim.epoch = epoch && within next then schedule sim ~at:next (tick next)
  in
  let first = t.now +. period in
  if within first then schedule t ~at:first (tick first)

let pending t = Event_queue.length t.queue

let run_next t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
      t.now <- time;
      f t;
      true

let run_until t horizon =
  let rec loop () =
    match Event_queue.peek_time t.queue with
    | Some time when time <= horizon ->
        ignore (run_next t);
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  if horizon > t.now then t.now <- horizon

let stop t =
  t.epoch <- t.epoch + 1;
  Event_queue.clear t.queue
