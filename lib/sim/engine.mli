(** Discrete-event simulation engine.

    A simulation is a clock plus an event queue of callbacks.  Components
    schedule work at absolute or relative times; [run_until] fires events in
    timestamp order, advancing the clock.  Within one timestamp events fire
    in scheduling order, so runs are deterministic. *)

type t

val create : ?seed:int64 -> unit -> t
(** Fresh simulation at time 0.  [seed] (default [42L]) feeds the root RNG
    from which component streams are split. *)

val now : t -> float
(** Current simulation time (seconds, by convention). *)

val rng : t -> Rng.t
(** The root random stream.  Components should [Rng.split] their own. *)

val schedule : t -> at:float -> (t -> unit) -> unit
(** [schedule sim ~at f] runs [f sim] at absolute time [at].
    @raise Invalid_argument if [at] is earlier than [now sim]. *)

val schedule_in : t -> delay:float -> (t -> unit) -> unit
(** [schedule_in sim ~delay f] runs [f] at [now sim +. delay].
    @raise Invalid_argument if [delay < 0.]. *)

val every : t -> period:float -> ?until:float -> (t -> unit) -> unit
(** [every sim ~period f] runs [f] now + period, then every [period], until
    the optional [until] bound (exclusive) or the end of the run.
    @raise Invalid_argument if [period <= 0.]. *)

val pending : t -> int
(** Number of queued events. *)

val run_until : t -> float -> unit
(** Fire every event scheduled strictly before or at the given horizon,
    leaving the clock at the horizon. *)

val run_next : t -> bool
(** Fire the single earliest event; [false] when the queue is empty. *)

val stop : t -> unit
(** Discard all pending events; periodic tasks cease.  A periodic task
    whose callback is executing when [stop] is called does not reschedule
    itself: [stop] ends the current scheduling epoch, and [every] ticks
    refuse to re-arm across an epoch boundary.  Tasks started after the
    stop run normally. *)
