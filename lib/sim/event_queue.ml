type 'a entry = { time : float; seq : int; payload : 'a }

(* Slots at or beyond [size] hold [None]: a popped entry's payload must
   become collectable immediately, not survive in the vacated slot until
   some later [add] overwrites it (a space leak for large payloads in long
   simulations). *)
type 'a t = {
  mutable heap : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty t = t.size = 0

let length t = t.size

let get t i = match t.heap.(i) with Some e -> e | None -> assert false

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let heap = Array.make new_cap None in
  Array.blit t.heap 0 heap 0 t.size;
  t.heap <- heap

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before (get t i) (get t parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before (get t l) (get t !smallest) then smallest := l;
  if r < t.size && before (get t r) (get t !smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let add t ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.add: NaN time";
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- Some entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek_time t = if t.size = 0 then None else Some (get t 0).time

let pop t =
  if t.size = 0 then None
  else begin
    let top = get t 0 in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      (* clear the vacated slot so the moved entry is not retained twice
         and, once it pops too, not retained at all *)
      t.heap.(t.size) <- None;
      sift_down t 0
    end
    else t.heap.(0) <- None;
    Some (top.time, top.payload)
  end

let clear t =
  Array.fill t.heap 0 t.size None;
  t.size <- 0

let drain t =
  let rec loop acc =
    match pop t with None -> List.rev acc | Some e -> loop (e :: acc)
  in
  loop []
