(** Priority queue of timestamped events.

    A binary min-heap ordered by [(time, sequence)]: events fire in time
    order, and events scheduled for the same instant fire in insertion order
    (FIFO), which keeps simulations deterministic. *)

type 'a t
(** Queue of events carrying payloads of type ['a]. *)

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val add : 'a t -> time:float -> 'a -> unit
(** [add q ~time payload] schedules [payload] at [time].
    @raise Invalid_argument if [time] is NaN. *)

val peek_time : 'a t -> float option
(** Earliest scheduled time, if any. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event.  The queue drops its reference
    to the popped payload immediately — long-running simulations cannot
    leak popped payloads through vacated heap slots. *)

val clear : 'a t -> unit
(** Empty the queue, releasing every pending payload. *)

val drain : 'a t -> (float * 'a) list
(** Pop everything, in firing order. *)
