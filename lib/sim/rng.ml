type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 output function: two xor-shift-multiply rounds over a
   Weyl-sequence counter. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* rejection sampling over 62 uniform bits: [r mod bound] alone is biased
     towards small residues whenever [bound] does not divide 2^62, so draws
     landing in the incomplete final block [limit, 2^62) are redrawn.  The
     rejected tail is < bound / 2^62 of the space, so a redraw is
     astronomically rare for simulation-sized bounds and draws below
     [limit] are bit-identical to the pre-rejection stream. *)
  let mask = 0x3FFFFFFFFFFFFFFFL in
  let max62 = 0x3FFFFFFFFFFFFFFF in
  (* 2^62 itself overflows the 63-bit native int, so compute
     rem = 2^62 mod bound as ((2^62 - 1) mod bound + 1) mod bound *)
  let rem = ((max62 mod bound) + 1) mod bound in
  if rem = 0 then Int64.to_int (Int64.logand (bits64 t) mask) mod bound
  else begin
    let limit = max62 - rem + 1 (* = 2^62 - rem, the last complete block *) in
    let rec draw () =
      let r = Int64.to_int (Int64.logand (bits64 t) mask) in
      if r >= limit then draw () else r mod bound
    in
    draw ()
  end

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits scaled into [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  let unit = float_of_int bits /. 9007199254740992.0 in
  unit *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let exponential t mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = ref (float t 1.0) in
  (* avoid log 0 *)
  if !u = 0.0 then u := epsilon_float;
  -. mean *. log !u

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))
