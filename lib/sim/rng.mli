(** Deterministic pseudo-random number generation for simulations.

    Every stochastic component of the simulator draws from an explicit
    generator state so that a run is fully reproducible from its seed.  The
    implementation is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014), which is
    fast, passes BigCrush, and supports cheap stream splitting. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator from a 64-bit seed.  Distinct seeds
    give statistically independent streams. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val split : t -> t
(** [split t] derives a new independent generator from [t], advancing [t].
    Use one split stream per simulated component so that adding a component
    does not perturb the draws of the others. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound) — exactly uniform, by
    rejection sampling: draws from the incomplete final block of the
    62-bit space are redrawn rather than folded (modulo-biased) onto the
    small residues.  @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in \[lo, hi\] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to \[0,1\]). *)

val exponential : t -> float -> float
(** [exponential t mean] draws from an exponential distribution with the
    given mean.  Used for stochastic inter-arrival times. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  @raise Invalid_argument on
    an empty array. *)
