let default_reservoir = 4096

type t = {
  capacity : int;
  mutable count : int; (* finite observations *)
  mutable nan_count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable total : float;
  mutable min_v : float;
  mutable max_v : float;
  reservoir : float array;
  mutable filled : int;
  mutable seed : int64; (* deterministic replacement stream *)
  mutable sorted : float array option; (* cache invalidated by add *)
}

let create ?(reservoir = default_reservoir) () =
  if reservoir <= 0 then invalid_arg "Stats.create: reservoir must be positive";
  {
    capacity = reservoir;
    count = 0;
    nan_count = 0;
    mean = 0.0;
    m2 = 0.0;
    total = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
    reservoir = Array.make reservoir 0.0;
    filled = 0;
    seed = 0x51700F1EL;
    sorted = None;
  }

(* splitmix64 step: a fixed, instance-local stream so runs replay exactly. *)
let rand_below t n =
  t.seed <- Int64.add t.seed 0x9E3779B97F4A7C15L;
  let z = t.seed in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.rem (Int64.logand z Int64.max_int) (Int64.of_int n))

let add t x =
  if Float.is_nan x then t.nan_count <- t.nan_count + 1
  else begin
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x;
    (* Algorithm R: below capacity keep everything (quantiles stay exact);
       past it each observation replaces a random slot with probability
       capacity/count. *)
    if t.filled < t.capacity then begin
      t.reservoir.(t.filled) <- x;
      t.filled <- t.filled + 1;
      t.sorted <- None
    end
    else
      let j = rand_below t t.count in
      if j < t.capacity then begin
        t.reservoir.(j) <- x;
        t.sorted <- None
      end
  end

let count t = t.count

let nan_count t = t.nan_count

let total t = t.total

let mean t = if t.count = 0 then 0.0 else t.mean

let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)

let stddev t = sqrt (variance t)

let min t =
  if t.count = 0 then invalid_arg "Stats.min: empty sample";
  t.min_v

let max t =
  if t.count = 0 then invalid_arg "Stats.max: empty sample";
  t.max_v

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
      let a = Array.sub t.reservoir 0 t.filled in
      Array.sort Float.compare a;
      t.sorted <- Some a;
      a

let percentile t p =
  if t.count = 0 then invalid_arg "Stats.percentile: empty sample";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  (* Extrema are tracked exactly even when the reservoir has subsampled. *)
  if p = 0.0 then t.min_v
  else if p = 100.0 then t.max_v
  else
    let a = sorted t in
    let n = Array.length a in
    (* nearest-rank: smallest index whose rank covers p percent *)
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)) in
    a.(idx)

let median t = percentile t 50.0

let pp_summary ppf t =
  if t.count = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p99=%.3f max=%.3f"
      t.count (mean t) (stddev t) t.min_v (median t) (percentile t 99.0) t.max_v

module Counter = struct
  type t = (string, int) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let add t name n =
    let cur = Option.value ~default:0 (Hashtbl.find_opt t name) in
    Hashtbl.replace t name (cur + n)

  let incr t name = add t name 1

  let get t name = Option.value ~default:0 (Hashtbl.find_opt t name)

  let to_list t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
end
