(** Online statistics for simulation measurements. *)

type t
(** A running univariate sample: count, mean, variance (Welford), exact
    extrema, and a bounded reservoir for quantiles.  Memory is O(reservoir
    capacity) regardless of how many observations are added; below capacity
    the reservoir holds every observation and quantiles are exact, past it
    they are estimated from a uniform subsample (Algorithm R with a fixed
    per-instance seed, so runs are reproducible).

    NaN observations are never folded into the statistics: they are tallied
    separately (see {!nan_count}) and excluded from count, moments, extrema
    and quantiles.  Infinities are accepted as ordinary observations. *)

val create : ?reservoir:int -> unit -> t
(** [reservoir] (default 4096) caps retained observations.
    @raise Invalid_argument if it is not positive. *)

val add : t -> float -> unit
(** Record one observation. *)

val count : t -> int
(** Non-NaN observations recorded. *)

val nan_count : t -> int
(** NaN observations seen (excluded from everything else). *)

val total : t -> float

val mean : t -> float
(** 0. on an empty sample. *)

val variance : t -> float
(** Unbiased sample variance; 0. for fewer than two observations. *)

val stddev : t -> float

val min : t -> float
(** Exact, even past reservoir capacity.
    @raise Invalid_argument on an empty sample. *)

val max : t -> float
(** Exact, even past reservoir capacity.
    @raise Invalid_argument on an empty sample. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in \[0,100\], nearest-rank method over the
    reservoir.  [p = 0.] and [p = 100.] return the exact minimum and
    maximum; other quantiles are exact while [count t] is within reservoir
    capacity and estimates thereafter.
    @raise Invalid_argument on an empty sample or out-of-range [p]. *)

val median : t -> float

val pp_summary : Format.formatter -> t -> unit
(** One-line [n/mean/sd/min/p50/p99/max] summary. *)

(** Named counters, e.g. per-event-kind tallies. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> string -> unit
  val add : t -> string -> int -> unit
  val get : t -> string -> int
  val to_list : t -> (string * int) list
  (** Sorted by name. *)
end
