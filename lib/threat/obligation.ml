(* A threat compiles to a denial obligation: the attack operation on the
   threat's asset, in every mode the threat is live, must be denied to
   every subject the model does not exempt.  Exemptions exist only for
   residual-risk threats — when the attack operation is also a legitimate
   operation, the entry-point subjects hold it by design and policy alone
   cannot distinguish use from abuse (paper §III: residual risk). *)

type t = {
  threat_id : string;
  title : string;
  asset : string;
  operation : Threat.operation;
  modes : string list;
  exempt_subjects : string list;
  residual : bool;
}

let of_threat ?(subjects_of_entry_point = fun ep -> [ ep ]) (t : Threat.t) =
  let residual = List.mem t.attack_operation t.legitimate_operations in
  let entry_subjects =
    List.concat_map subjects_of_entry_point t.entry_points
    |> List.sort_uniq String.compare
  in
  {
    threat_id = t.id;
    title = t.title;
    asset = t.asset;
    operation = t.attack_operation;
    modes = t.modes;
    exempt_subjects = (if residual then entry_subjects else []);
    residual;
  }

let of_model ?subjects_of_entry_point (m : Model.t) =
  List.map (of_threat ?subjects_of_entry_point) m.threats

let pp ppf o =
  Format.fprintf ppf "%s: deny %s on %s%s%s%s" o.threat_id
    (Threat.operation_name o.operation)
    o.asset
    (match o.modes with
    | [] -> " in every mode"
    | modes -> " in " ^ String.concat "," modes)
    (match o.exempt_subjects with
    | [] -> ""
    | l -> " except from " ^ String.concat "," l)
    (if o.residual then " (residual risk)" else "")
