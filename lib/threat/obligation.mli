(** Denial obligations derived from threats.

    The threat-to-assertion direction (ATLAS): each modelled threat
    synthesises the statement a deployed policy must discharge — {e the
    attack operation on the threat's asset is denied, in every mode the
    threat is live, to every subject the model does not exempt}.  The
    semantic verifier checks each obligation against a compiled policy's
    decision regions ([secpolc verify], diagnostic SP013) and the same
    records serve as runtime assertion templates for invariant monitors.

    For a residual-risk threat — the attack operation is also a legitimate
    operation — the entry-point subjects are exempted: they hold the
    operation by design, and the policy layer cannot tell use from abuse
    (the paper's residual-risk rows).  All other subjects must still be
    denied. *)

type t = {
  threat_id : string;
  title : string;
  asset : string;
  operation : Threat.operation;  (** the attack operation that must be denied *)
  modes : string list;  (** modes the threat is live in; [[]] = every mode *)
  exempt_subjects : string list;
      (** subjects allowed to hold the operation (residual risk only) *)
  residual : bool;
}

val of_threat : ?subjects_of_entry_point:(string -> string list) -> Threat.t -> t
(** [subjects_of_entry_point] maps an entry-point id to the policy subject
    names requests arrive as (defaults to the identity, one subject per
    entry-point id). *)

val of_model :
  ?subjects_of_entry_point:(string -> string list) -> Model.t -> t list

val pp : Format.formatter -> t -> unit
