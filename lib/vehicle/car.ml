module Engine = Secpol_sim.Engine
module Bus = Secpol_can.Bus
module Node = Secpol_can.Node
module Controller = Secpol_can.Controller

type enforcement =
  | No_enforcement
  | Software_filters
  | Hpe of Secpol_policy.Ast.policy

type t = {
  sim : Engine.t;
  bus : Bus.t;
  state : State.t;
  enforcement : enforcement;
  nodes : (string * Node.t) list;
  hpes : (string * Secpol_hpe.Engine.t) list;
  policy_engine : Secpol_policy.Engine.t option;
  (* fail-safe HPE configs computed at build time: entering Fail_safe must
     not depend on the policy engine still answering — the degradation
     path is exactly for when it does not *)
  failsafe_configs : (string * Secpol_hpe.Config.t) list;
}

let builders =
  [
    (Names.sensors, Sensors.create);
    (Names.ev_ecu, Ev_ecu.create);
    (Names.eps, Eps.create);
    (Names.engine, Engine_ecu.create);
    (Names.telematics, Telematics.create);
    (Names.infotainment, Infotainment.create);
    (Names.door_locks, Door_locks.create);
    (Names.safety, Safety.create);
  ]

let provision_hpes hpes policy_engine mode =
  List.iter
    (fun (name, hpe) ->
      let config = Policy_map.hpe_config_for policy_engine ~mode ~node:name in
      Secpol_hpe.Registers.hard_reset (Secpol_hpe.Engine.registers hpe);
      match Secpol_hpe.Engine.provision hpe config with
      | Ok () -> ()
      | Error e -> invalid_arg (Printf.sprintf "Car: HPE provisioning %s: %s" name e))
    hpes

let create ?(seed = 42L) ?(bitrate = 500_000.0) ?(corrupt_prob = 0.0)
    ?(enforcement = Software_filters) ?(driving = true) ?obs () =
  let sim = Engine.create ~seed () in
  let bus = Bus.create ~corrupt_prob ~bitrate sim in
  Option.iter (Bus.attach_obs bus) obs;
  let state = if driving then State.driving () else State.create () in
  let nodes = List.map (fun (name, build) -> (name, build sim bus state)) builders in
  (match enforcement with
  | No_enforcement ->
      List.iter
        (fun (_, node) -> Controller.set_filters (Node.controller node) [])
        nodes
  | Software_filters | Hpe _ -> ());
  let hpes, policy_engine, failsafe_configs =
    match enforcement with
    | Hpe policy ->
        let engine = Policy_map.engine ?obs policy in
        let hpes =
          List.map
            (fun (name, node) -> (name, Secpol_hpe.Engine.install ?obs node))
            nodes
        in
        provision_hpes hpes engine state.State.mode;
        let failsafe_configs =
          List.map
            (fun (name, _) ->
              ( name,
                Policy_map.hpe_config_for engine ~mode:Modes.Fail_safe
                  ~node:name ))
            hpes
        in
        (hpes, Some engine, failsafe_configs)
    | No_enforcement | Software_filters -> ([], None, [])
  in
  { sim; bus; state; enforcement; nodes; hpes; policy_engine; failsafe_configs }

let node t name =
  match List.assoc_opt name t.nodes with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Car.node: unknown node %S" name)

let hpe t name = List.assoc_opt name t.hpes

let run t ~seconds = Engine.run_until t.sim (Engine.now t.sim +. seconds)

let mode t = t.state.State.mode

let set_mode t mode =
  t.state.State.mode <- mode;
  State.log t.state ~time:(Engine.now t.sim)
    (Printf.sprintf "car: mode -> %s" (Modes.name mode));
  match t.policy_engine with
  | Some engine -> provision_hpes t.hpes engine mode
  | None -> ()

(* Graceful degradation: latch Fail_safe using only state computed at
   build time.  Unlike [set_mode] this never consults the policy engine,
   so it works while the engine is stalled or unreachable — each HPE is
   hard-reset and re-provisioned from the cached fail-safe config, which
   also restores integrity after register-file corruption. *)
let enter_fail_safe t ~reason =
  if t.state.State.mode <> Modes.Fail_safe then begin
    t.state.State.mode <- Modes.Fail_safe;
    t.state.State.failsafe_latched <- true;
    State.log t.state ~time:(Engine.now t.sim)
      (Printf.sprintf "car: fail-safe entered (%s)" reason);
    List.iter
      (fun (name, hpe) ->
        match List.assoc_opt name t.failsafe_configs with
        | None -> ()
        | Some config ->
            Secpol_hpe.Registers.hard_reset (Secpol_hpe.Engine.registers hpe);
            (match Secpol_hpe.Engine.provision hpe config with
            | Ok () -> ()
            | Error e ->
                invalid_arg
                  (Printf.sprintf "Car: fail-safe provisioning %s: %s" name e)))
      t.hpes
  end

let total_hpe_blocks t =
  List.fold_left
    (fun acc (_, h) ->
      acc + Secpol_hpe.Engine.read_blocks h + Secpol_hpe.Engine.write_blocks h)
    0 t.hpes

let false_hpe_blocks t =
  let write_blocks =
    List.fold_left
      (fun acc (_, h) -> acc + Secpol_hpe.Engine.write_blocks h)
      0 t.hpes
  in
  let bad_read_blocks =
    Secpol_can.Trace.count (Bus.trace t.bus) (fun e ->
        match e.Secpol_can.Trace.event with
        | Secpol_can.Trace.Rx_blocked (receiver, _) -> (
            match e.Secpol_can.Trace.frame.Secpol_can.Frame.id with
            | Secpol_can.Identifier.Standard id -> (
                match Messages.find id with
                | Some m -> List.mem receiver m.consumers
                | None -> false)
            | Secpol_can.Identifier.Extended _ -> false)
        | _ -> false)
  in
  write_blocks + bad_read_blocks

let total_deliveries t =
  List.fold_left
    (fun acc (_, n) -> acc + Node.received_count n)
    0 t.nodes

let trace t = Bus.trace t.bus
