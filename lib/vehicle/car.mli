(** The assembled connected car (paper Fig. 2): eight ECUs on one CAN bus,
    with selectable enforcement.

    Enforcement levels, matching the experiments:
    - [No_enforcement]: acceptance filters cleared, no HPE — a device
      shipped with no security mechanism (and the state firmware compromise
      reduces the next level to).
    - [Software_filters]: controller acceptance filters per the message
      map's consumer sets — the conventional, firmware-configured defence.
    - [Hpe policy]: software filters *plus* a locked hardware policy engine
      on every node, provisioned from the given policy. *)

type enforcement =
  | No_enforcement
  | Software_filters
  | Hpe of Secpol_policy.Ast.policy

type t = {
  sim : Secpol_sim.Engine.t;
  bus : Secpol_can.Bus.t;
  state : State.t;
  enforcement : enforcement;
  nodes : (string * Secpol_can.Node.t) list;
  hpes : (string * Secpol_hpe.Engine.t) list;  (** empty unless [Hpe _] *)
  policy_engine : Secpol_policy.Engine.t option;
  failsafe_configs : (string * Secpol_hpe.Config.t) list;
      (** per-node HPE configs for [Fail_safe], derived once at build time
          so {!enter_fail_safe} works without the policy engine *)
}

val create :
  ?seed:int64 ->
  ?bitrate:float ->
  ?corrupt_prob:float ->
  ?enforcement:enforcement ->
  ?driving:bool ->
  ?obs:Secpol_obs.Registry.t ->
  unit ->
  t
(** Build the car at simulation time 0.  [enforcement] defaults to
    [Software_filters]; [driving] (default [true]) starts in normal mode at
    speed, engine running.  With [Hpe p] every node's HPE is provisioned
    for the initial mode and locked.  [obs] wires the bus, the policy
    engine and every HPE into one telemetry registry; omit it and no
    telemetry work happens beyond each component's own counters. *)

val node : t -> string -> Secpol_can.Node.t
(** @raise Invalid_argument on unknown node names; use {!Names}. *)

val hpe : t -> string -> Secpol_hpe.Engine.t option

val run : t -> seconds:float -> unit
(** Advance the simulation. *)

val mode : t -> Modes.t

val set_mode : t -> Modes.t -> unit
(** Change operating mode.  The mode line enters each HPE as a hardware
    input: the engines are hard-reset and re-provisioned for the new mode
    (firmware is not involved and the lock is re-applied). *)

val enter_fail_safe : t -> reason:string -> unit
(** The degradation path (paper Table I's Fail-safe operating mode): latch
    [Fail_safe], log the reason, and re-provision every HPE from the
    fail-safe configs cached at build time.  Never consults the policy
    engine — this is the transition a watchdog takes precisely when the
    engine has stopped answering — and, because each register file is
    hard-reset and re-programmed, it also restores HPE integrity after
    register corruption.  Idempotent once in [Fail_safe]. *)

val total_hpe_blocks : t -> int
(** All HPE blocks, read and write.  On a broadcast bus this includes the
    engine correctly dropping frames the node never consumes, so it is not
    a false-block count — see {!false_hpe_blocks}. *)

val false_hpe_blocks : t -> int
(** Blocks that would hurt legitimate function on *clean* traffic: write
    blocks (designed nodes only transmit designed messages) plus read
    blocks of frames whose receiver is a designed consumer.  The
    reproduction expects 0 on benign runs. *)

val total_deliveries : t -> int

val trace : t -> Secpol_can.Trace.t
