module Ast = Secpol_policy.Ast
module Ir = Secpol_policy.Ir
module Rate_window = Secpol_policy.Rate_window

type t = {
  id : int;
  mutable version : int;
  mutable mode : string;
  (* lazily allocated: most vehicles never touch a rated rule, and a
     campaign holds one of these records per vehicle *)
  mutable budgets : (int * string, Rate_window.t) Hashtbl.t option;
}

let create ?(mode = "normal") ~id ~version () =
  { id; version; mode; budgets = None }

let id t = t.id

let version t = t.version

let mode t = t.mode

let set_mode t mode = t.mode <- mode

let install t ~version =
  t.version <- version;
  t.budgets <- None

let budget t (rate : Ast.rate) idx subject =
  let tbl =
    match t.budgets with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 4 in
        t.budgets <- Some tbl;
        tbl
  in
  match Hashtbl.find_opt tbl (idx, subject) with
  | Some w -> w
  | None ->
      let w = Rate_window.of_rate rate in
      Hashtbl.add tbl (idx, subject) w;
      w

let decide t ~rules ~default ~now (req : Ir.request) =
  let matching = List.filter (fun r -> Ir.rule_matches r req) rules in
  if List.exists (fun (r : Ir.rule) -> r.decision = Ast.Deny) matching then
    Ast.Deny
  else
    (* first allow whose budget has room grounds the decision and consumes
       one slot — the engine's Deny_overrides [take_allow], with the
       window private to this vehicle *)
    let rec take = function
      | [] -> default
      | (r : Ir.rule) :: rest ->
          if r.decision <> Ast.Allow then take rest
          else begin
            match r.rate with
            | None -> Ast.Allow
            | Some rate ->
                if Rate_window.admit (budget t rate r.idx req.Ir.subject) ~now
                then Ast.Allow
                else take rest
          end
    in
    take matching

let live_budgets t =
  match t.budgets with None -> 0 | Some tbl -> Hashtbl.length tbl
