(** One deployed vehicle as seen by a fleet campaign.

    A fleet holds one compiled {!Secpol_policy.Table} per policy {e
    version}; an instance is only the per-vehicle mutable remainder —
    which version is installed, the vehicle's operating mode, and the
    vehicle's own behavioural rate budgets.  A million instances over a
    two-version rollout therefore share exactly two tables; nothing about
    an instance scales with policy size.

    {b Decision routing.}  Bulk traffic (anything whose outcome is not
    budget-dependent) goes through a shared
    {!Secpol_policy.Engine.decide_batch} over the version's table — the
    engine's budgets are keyed [(rule, subject)] and subjects are {e
    role} names shared by every vehicle, so rated decisions through a
    shared engine would conflate one vehicle's budget with another's.
    Requests that can ground in a rate-limited rule are routed here
    instead: {!decide} resolves them against the version's rule list with
    budgets private to this instance, under the same [Deny_overrides]
    semantics as the engine. *)

type t

val create : ?mode:string -> id:int -> version:int -> unit -> t
(** A vehicle running policy [version] in [mode] (default ["normal"]).
    No budget state is allocated until the first rated decision. *)

val id : t -> int

val version : t -> int

val mode : t -> string

val set_mode : t -> string -> unit

val install : t -> version:int -> unit
(** Install a policy version.  All rate-budget history is dropped: rule
    indices are only meaningful within one compiled version, and a fresh
    policy starts with full budgets — exactly what a device-side policy
    swap does ({!Secpol_policy.Engine.swap_db} behaves the same way). *)

val decide :
  t ->
  rules:Secpol_policy.Ir.rule list ->
  default:Secpol_policy.Ast.decision ->
  now:float ->
  Secpol_policy.Ir.request ->
  Secpol_policy.Ast.decision
(** [Deny_overrides] resolution of one request against [rules] (the
    installed version's rules for the request's asset, in source order,
    e.g. from {!Secpol_policy.Ir.rules_for_asset}), falling through to
    [default] when nothing matches or every matching allow's budget is
    exhausted.  Budgets are keyed [(rule index, subject)] {e inside this
    instance}, so two vehicles never share a window.  Decisions match
    {!Secpol_policy.Engine.decide} on a private engine fed the same
    request sequence. *)

val live_budgets : t -> int
(** Rate windows materialised so far (0 until a rated rule is hit);
    drops back to 0 on {!install}. *)
