module Policy = Secpol_policy
module Hpe_config = Secpol_hpe.Config
module Lint = Policy.Lint
module Diagnostic = Policy.Diagnostic

let hpe_consistency ?(bindings = Messages.bindings)
    ?(modes = List.map Modes.name Modes.all) ?(subjects = Names.assets) () =
  Lint.pass ~name:"hpe-consistency"
    ~short:"HPE approved lists agree with the software engine (SP008)"
    (fun cfg db ->
      let request ~mode ~subject op (b : Hpe_config.binding) =
        {
          Policy.Ir.mode;
          subject;
          asset = b.asset;
          op;
          msg_id = Some b.msg_id;
        }
      in
      (* a fresh engine per request: budgets of rate-limited rules must not
         leak between probe requests, and the cache must not mask the
         strategy *)
      let software_allows req =
        let engine =
          Policy.Engine.create ~strategy:cfg.Lint.strategy ~cache:false db
        in
        Policy.Engine.permitted engine req
      in
      List.concat_map
        (fun mode ->
          List.concat_map
            (fun subject ->
              let hpe =
                Hpe_config.of_policy
                  (Policy.Engine.create ~cache:false db)
                  ~mode ~subject ~bindings
              in
              List.concat_map
                (fun (b : Hpe_config.binding) ->
                  List.filter_map
                    (fun op ->
                      let approved =
                        match op with
                        | Policy.Ir.Read -> hpe.Hpe_config.read_ids
                        | Policy.Ir.Write -> hpe.Hpe_config.write_ids
                      in
                      let hardware = List.mem b.msg_id approved in
                      let software =
                        software_allows (request ~mode ~subject op b)
                      in
                      if hardware = software then None
                      else
                        Some
                          (Diagnostic.make Diagnostic.Hpe_mismatch
                             (Printf.sprintf
                                "HPE %s list for subject %s in mode %s %s id \
                                 0x%x (asset %s) but the software engine \
                                 decides %s"
                                (Policy.Ir.op_name op) subject mode
                                (if hardware then "grants" else "blocks")
                                b.msg_id b.asset
                                (if software then "allow" else "deny"))
                             ~asset:b.asset ~subject ~mode ~op
                             ~msg_range:(b.msg_id, b.msg_id)))
                    [ Policy.Ir.Read; Policy.Ir.Write ])
                bindings)
            subjects)
        modes)

let threat_traceability ?(rows = Threat_catalog.rows) () =
  Lint.pass ~name:"threat-traceability"
    ~short:"every Table-I countermeasure maps to >=1 rule (SP009)"
    (fun _cfg db ->
      let modes_overlap (r : Policy.Ir.rule) threat_modes =
        match (r.modes, threat_modes) with
        | None, _ | _, [] -> true
        | Some rule_modes, _ ->
            List.exists (fun m -> List.mem m rule_modes) threat_modes
      in
      List.filter_map
        (fun (row : Threat_catalog.row) ->
          let t = row.threat in
          let traced =
            List.exists
              (fun (r : Policy.Ir.rule) ->
                r.asset = t.Secpol_threat.Threat.asset
                && modes_overlap r t.Secpol_threat.Threat.modes)
              db.Policy.Ir.rules
          in
          if traced then None
          else
            Some
              (Diagnostic.make Diagnostic.Threat_untraced
                 (Printf.sprintf
                    "threat %s (%S) has no countermeasure rule: no rule \
                     touches asset %s in modes %s"
                    t.Secpol_threat.Threat.id t.Secpol_threat.Threat.title
                    t.Secpol_threat.Threat.asset
                    (String.concat "," t.Secpol_threat.Threat.modes))
                 ~asset:t.Secpol_threat.Threat.asset))
        rows)

let passes () = [ hpe_consistency (); threat_traceability () ]

let register () = List.iter Lint.register (passes ())
