(** Cross-layer lint passes for the connected-car deployment.

    The built-in passes in [Secpol_policy.Lint] see only the compiled rule
    database.  These passes also see the layers the paper deploys it to:

    - {!hpe_consistency} checks the paper's transparency property (Fig. 4):
      compiling the policy down to hardware approved-ID lists
      ([Secpol_hpe.Config.of_policy]) and asking the software engine
      ([Secpol_policy.Engine.decide]) must agree on every (binding, op).
      The HPE filters per message id, so two bindings sharing an id on
      different assets — or a resolution strategy the hardware compiler
      does not model — surface here as [SP008 hpe-mismatch].

    - {!threat_traceability} checks that every countermeasure row of the
      Table-I threat catalogue still maps to at least one rule of the
      policy under lint; an orphaned threat means a mitigation was lost in
      a policy update and is reported as [SP009 threat-untraced]. *)

module Policy = Secpol_policy

val hpe_consistency :
  ?bindings:Secpol_hpe.Config.binding list ->
  ?modes:string list ->
  ?subjects:string list ->
  unit ->
  Policy.Lint.pass
(** Defaults: the vehicle message map ({!Messages.bindings}), all car modes
    and all node subjects.  The software side is evaluated under the lint
    config's strategy with a fresh engine per request, so rate budgets and
    caches cannot skew the comparison. *)

val threat_traceability : ?rows:Threat_catalog.row list -> unit -> Policy.Lint.pass
(** Defaults to the full sixteen-row catalogue. *)

val passes : unit -> Policy.Lint.pass list
(** Both passes with their defaults. *)

val register : unit -> unit
(** Add {!passes} to the global [Lint] registry. *)
