module Ast = Secpol_policy.Ast

let subject_of_node = Names.asset_of_node

(* One allow rule per (direction, message): writers are the designed
   producers, readers the designed consumers. *)
let rules_for_message (m : Messages.t) =
  let rule op nodes =
    match nodes with
    | [] -> []
    | _ ->
        [
          {
            Ast.decision = Ast.Allow;
            op;
            subjects =
              Ast.Subjects
                (List.sort_uniq String.compare (List.map subject_of_node nodes));
            messages = Some [ Ast.single m.id ];
            rate = None;
          };
        ]
  in
  rule Ast.Write m.producers @ rule Ast.Read m.consumers

let baseline ?(version = 1) () =
  (* Group messages by mode scope, then emit one asset block per asset in
     each group. *)
  let groups = Hashtbl.create 4 in
  List.iter
    (fun (m : Messages.t) ->
      let key = List.sort compare (List.map Modes.name m.modes) in
      let existing = Option.value ~default:[] (Hashtbl.find_opt groups key) in
      Hashtbl.replace groups key (existing @ [ m ]))
    Messages.all;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) groups [] |> List.sort compare in
  let sections =
    List.concat_map
      (fun key ->
        let msgs = Hashtbl.find groups key in
        let assets =
          List.sort_uniq String.compare (List.map (fun (m : Messages.t) -> m.asset) msgs)
        in
        let blocks =
          List.map
            (fun asset ->
              let rules =
                msgs
                |> List.filter (fun (m : Messages.t) -> m.asset = asset)
                |> List.concat_map rules_for_message
              in
              { Ast.asset; rules })
            assets
        in
        if key = [] then List.map (fun b -> Ast.Global b) blocks
        else [ Ast.Modes (key, blocks) ])
      keys
  in
  Ast.normalise
    { Ast.name = "car_baseline"; version; sections = Ast.Default Ast.Deny :: sections }

let permissive ?(version = 1) () =
  let blocks =
    List.map
      (fun asset ->
        Ast.Global
          {
            Ast.asset;
            rules =
              [
                {
                  Ast.decision = Ast.Allow;
                  op = Ast.Rw;
                  subjects = Ast.Any_subject;
                  messages = None;
                  rate = None;
                };
              ];
          })
      Names.assets
  in
  Ast.normalise
    {
      Ast.name = "car_baseline";
      version;
      sections = Ast.Default Ast.Deny :: blocks;
    }

let lock_rate = Ast.rate_limit ~count:2 ~window_ms:10_000

let add_lock_rate (r : Ast.rule) =
  let is_lock_command =
    match r.messages with
    | Some [ g ] -> g.Ast.lo = Messages.lock_command && g.Ast.hi = g.Ast.lo
    | Some _ | None -> false
  in
  if r.decision = Ast.Allow && r.op = Ast.Write && is_lock_command then
    { r with rate = Some lock_rate }
  else r

let hardened ?(version = 2) () =
  let p = baseline ~version () in
  let sections =
    List.map
      (function
        | Ast.Global b -> Ast.Global { b with rules = List.map add_lock_rate b.rules }
        | Ast.Modes (modes, blocks) ->
            Ast.Modes
              (modes,
               List.map
                 (fun (b : Ast.asset_block) ->
                   { b with rules = List.map add_lock_rate b.rules })
                 blocks)
        | Ast.Default _ as s -> s)
      p.Ast.sections
  in
  let situational =
    Ast.Modes
      ( [ Modes.name Modes.Fail_safe ],
        [
          {
            Ast.asset = Names.door_locks;
            rules =
              [
                {
                  Ast.decision = Ast.Deny;
                  op = Ast.Write;
                  subjects = Ast.Subjects [ Names.asset_connectivity ];
                  messages = Some [ Ast.single Messages.lock_command ];
                  rate = None;
                };
              ];
          };
        ] )
  in
  Ast.normalise { p with Ast.sections = sections @ [ situational ] }

let compile policy =
  Secpol_policy.Compile.compile_exn
    ~known_modes:(List.map Modes.name Modes.all)
    ~known_assets:Names.assets ~known_subjects:Names.assets policy

let engine ?strategy ?obs policy =
  Secpol_policy.Engine.create ?strategy ?obs (compile policy)

let hpe_config_for engine ~mode ~node =
  let cfg =
    Secpol_hpe.Config.of_policy engine ~mode:(Modes.name mode)
      ~subject:(Names.asset_of_node node) ~bindings:Messages.bindings
  in
  (* spoof detection: IDs this node is the only designed producer of *)
  let own_ids =
    Messages.all
    |> List.filter (fun (m : Messages.t) -> m.producers = [ node ])
    |> List.map (fun (m : Messages.t) -> m.id)
  in
  { cfg with Secpol_hpe.Config.own_ids }
