(** Car policies derived from the message map.

    [baseline] is the least-privilege policy the paper's approach arrives
    at: every designed producer may write exactly its message IDs, every
    designed consumer may read exactly what it acts on, everything else is
    denied by default.  [permissive] is the factory state of a device
    shipped without security policies (everything allowed) — the "before"
    of the policy-update scenarios. *)

val baseline : ?version:int -> unit -> Secpol_policy.Ast.policy
(** Policy name ["car_baseline"]; subjects are asset names (the asset
    hosted by the requesting node); rules are message-ID scoped; messages
    designed for specific modes get mode sections. *)

val permissive : ?version:int -> unit -> Secpol_policy.Ast.policy
(** Policy name ["car_baseline"] as well, so an update from [permissive]
    to [baseline] is a version bump of the same policy. *)

val hardened : ?version:int -> unit -> Secpol_policy.Ast.policy
(** The baseline plus the "more complex behavioural or situational based
    policies" the paper's Table I calls for on its residual rows:
    - situational: in fail-safe mode, door-lock writes from the
      connectivity path are denied (closes row 14 — doors cannot be
      remotely relocked during an accident — while normal-mode remote
      locking keeps working);
    - behavioural: lock commands are budgeted to 2 per 10 s per writer, so
      a replayed lock/unlock storm from a compromised legitimate writer is
      shaped down to the designed rate. *)

val compile : Secpol_policy.Ast.policy -> Secpol_policy.Ir.db
(** Compile against the car's known modes / assets / subjects.  This is
    the database {!engine} evaluates; fleet campaigns use it directly so
    one {!Secpol_policy.Table.compile} of the result can be shared by
    every vehicle on that version.
    @raise Invalid_argument if the policy does not compile. *)

val engine :
  ?strategy:Secpol_policy.Engine.strategy ->
  ?obs:Secpol_obs.Registry.t ->
  Secpol_policy.Ast.policy ->
  Secpol_policy.Engine.t
(** Compile and wrap in an evaluation engine, optionally instrumented
    (see {!Secpol_policy.Engine.create}).
    @raise Invalid_argument if the policy does not compile. *)

val hpe_config_for :
  Secpol_policy.Engine.t -> mode:Modes.t -> node:string -> Secpol_hpe.Config.t
(** The HPE approved lists for one node under one mode, over the full
    message map. *)
