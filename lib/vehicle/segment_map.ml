module Topology = Secpol_can.Topology
module Policy = Secpol_policy

let seg_powertrain = "powertrain"

let seg_chassis = "chassis"

let seg_infotainment = "infotainment"

let seg_telematics = "telematics"

let seg_comfort = "comfort"

let gw_powertrain = "gw_powertrain"

let gw_infotainment = "gw_infotainment"

let gw_telematics = "gw_telematics"

(* Four-segment reference car: a chassis backbone carrying the safety
   domain, with the powertrain and the two externally-exposed domains
   (infotainment, telematics) each behind their own gateway.  The split
   mirrors the paper's §II architecture figure: the attack-surface ECUs
   (connectivity, media) are the leaves, the safety-critical backbone is
   what their gateways protect. *)
let spec () =
  {
    Topology.segments =
      [
        (seg_powertrain, [ Names.sensors; Names.ev_ecu; Names.engine ]);
        (seg_chassis, [ Names.eps; Names.safety; Names.door_locks ]);
        (seg_infotainment, [ Names.infotainment ]);
        (seg_telematics, [ Names.telematics ]);
      ];
    links =
      [
        (gw_powertrain, (seg_powertrain, seg_chassis));
        (gw_infotainment, (seg_infotainment, seg_chassis));
        (gw_telematics, (seg_telematics, seg_chassis));
      ];
  }

(* The historical two-bus split (powertrain vs comfort) — Segmented builds
   on this, making the old hand-wired module a special case of the graph. *)
let two_segment_spec () =
  {
    Topology.segments =
      [
        ( seg_powertrain,
          [ Names.sensors; Names.ev_ecu; Names.eps; Names.engine; Names.safety ]
        );
        ( seg_comfort,
          [ Names.infotainment; Names.telematics; Names.door_locks ] );
      ];
    links = [ ("gateway", (seg_powertrain, seg_comfort)) ];
  }

let segment_of_node (spec : Topology.spec) node =
  List.find_map
    (fun (seg, nodes) -> if List.mem node nodes then Some seg else None)
    spec.Topology.segments

let segment_of_node_exn spec node =
  match segment_of_node spec node with
  | Some seg -> seg
  | None ->
      invalid_arg
        (Printf.sprintf "Segment_map: node %S is in no segment" node)

(* Designed flows, policy-filtered: one flow per (message, producing
   segment), with destination segments restricted to consumers the policy
   lets read the message in at least one mode.  Rate budgets must not be
   consumed while deriving routes, so the policy database is queried
   through a fresh uninstrumented engine. *)
let flows ?policy ~spec () =
  let policy = match policy with Some p -> p | None -> Policy_map.baseline () in
  let engine = Policy.Engine.create ~cache:false (Policy_map.compile policy) in
  let readable (m : Messages.t) node =
    List.exists
      (fun mode ->
        Policy.Engine.permitted engine
          {
            Policy.Ir.mode = Modes.name mode;
            subject = Names.asset_of_node node;
            asset = m.asset;
            op = Policy.Ir.Read;
            msg_id = Some m.id;
          })
      Modes.all
  in
  List.concat_map
    (fun (m : Messages.t) ->
      let dsts =
        m.consumers
        |> List.filter (readable m)
        |> List.map (segment_of_node_exn spec)
        |> List.sort_uniq compare
      in
      if dsts = [] then []
      else
        m.producers
        |> List.map (segment_of_node_exn spec)
        |> List.sort_uniq compare
        |> List.map (fun src -> { Topology.id = m.id; src; dsts }))
    Messages.all

(* The fail-closed limp-home whitelist for gateway failover: only
   mode-unrestricted safety-critical crossings (airbag deploy, fail-safe
   entry) keep flowing; every telemetry, command and diagnostic crossing
   is dropped until the gateway is repaired. *)
let minimal_crossing_ids () =
  let spec = spec () in
  Messages.all
  |> List.filter_map (fun (m : Messages.t) ->
         if m.asset <> Names.asset_safety_critical || m.modes <> [] then None
         else
           let segs nodes =
             List.sort_uniq compare
               (List.map (segment_of_node_exn spec) nodes)
           in
           let crosses =
             List.exists
               (fun p -> List.exists (fun c -> p <> c) (segs m.consumers))
               (segs m.producers)
           in
           if crosses then Some m.id else None)
  |> List.sort_uniq compare
