(** The car's segment layout and policy-derived flows.

    Binds the vehicle message map ({!Messages}) and the compiled policy
    ({!Policy_map}) to the generic {!Secpol_can.Topology} graph: the
    reference four-segment layout, the historical two-segment split, and
    the flow derivation that turns "designed producer/consumer + policy
    says the consumer may read" into gateway routing. *)

val seg_powertrain : string

val seg_chassis : string

val seg_infotainment : string

val seg_telematics : string

val seg_comfort : string
(** Only used by the two-segment spec. *)

val gw_powertrain : string

val gw_infotainment : string

val gw_telematics : string

val spec : unit -> Secpol_can.Topology.spec
(** Four segments in a star around the chassis backbone: powertrain
    (sensors, EV-ECU, engine), chassis (EPS, safety, door locks),
    infotainment and telematics each alone behind their own gateway. *)

val two_segment_spec : unit -> Secpol_can.Topology.spec
(** The original powertrain/comfort split with a single gateway named
    ["gateway"] — {!Segmented} is this spec on the topology graph. *)

val segment_of_node : Secpol_can.Topology.spec -> string -> string option

val flows :
  ?policy:Secpol_policy.Ast.policy ->
  spec:Secpol_can.Topology.spec ->
  unit ->
  Secpol_can.Topology.flow list
(** One flow per (message, producing segment); destinations are the
    segments of consumers the policy (default {!Policy_map.baseline})
    permits to read the message in at least one mode.  Messages no policy
    lets anyone read produce no flow, so they never cross a gateway. *)

val minimal_crossing_ids : unit -> int list
(** Mode-unrestricted safety-critical messages that cross segments of the
    reference spec (airbag deploy, fail-safe entry) — the fail-closed
    limp-home whitelist a crashed gateway falls back to on failover. *)
