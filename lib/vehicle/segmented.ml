module Engine = Secpol_sim.Engine
module Bus = Secpol_can.Bus
module Node = Secpol_can.Node
module Gateway = Secpol_can.Gateway
module Topology = Secpol_can.Topology

type t = {
  sim : Engine.t;
  powertrain : Bus.t;
  comfort : Bus.t;
  gateway : Gateway.t;
  state : State.t;
  nodes : (string * Node.t) list;
}

let powertrain_nodes =
  [ Names.sensors; Names.ev_ecu; Names.eps; Names.engine; Names.safety ]

let comfort_nodes = [ Names.infotainment; Names.telematics; Names.door_locks ]

let side node = if List.mem node powertrain_nodes then `Powertrain else `Comfort

(* The symmetric union of both directions' whitelists, kept for
   compatibility with the original hand-wired module: an ID crosses iff
   some designed producer and consumer sit on opposite sides. *)
let crossing_ids () =
  Messages.all
  |> List.filter_map (fun (m : Messages.t) ->
         let producer_sides = List.map side m.producers in
         let consumer_sides = List.map side m.consumers in
         let crosses =
           List.exists
             (fun p -> List.exists (fun c -> p <> c) consumer_sides)
             producer_sides
         in
         if crosses then Some m.id else None)
  |> List.sort_uniq compare

(* The two-bus car is now just the two-segment spec on the topology
   graph: buses, gateway and per-direction whitelists are derived from
   the message map by [Topology.create], not wired by hand here. *)
let create ?(seed = 42L) ?(bitrate = 500_000.0) ?(driving = true) () =
  let sim = Engine.create ~seed () in
  let spec = Segment_map.two_segment_spec () in
  let flows = Segment_map.flows ~spec () in
  let topo = Topology.create ~bitrate sim spec ~flows in
  let state = if driving then State.driving () else State.create () in
  let builders =
    [
      (Names.sensors, Sensors.create);
      (Names.ev_ecu, Ev_ecu.create);
      (Names.eps, Eps.create);
      (Names.engine, Engine_ecu.create);
      (Names.safety, Safety.create);
      (Names.infotainment, Infotainment.create);
      (Names.telematics, Telematics.create);
      (Names.door_locks, Door_locks.create);
    ]
  in
  let powertrain = Topology.bus topo Segment_map.seg_powertrain in
  let comfort = Topology.bus topo Segment_map.seg_comfort in
  let nodes =
    List.map
      (fun (name, build) ->
        let bus = if side name = `Powertrain then powertrain else comfort in
        (name, build sim bus state))
      builders
  in
  let gateway = Topology.gateway topo "gateway" in
  { sim; powertrain; comfort; gateway; state; nodes }

let node t name =
  match List.assoc_opt name t.nodes with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Segmented.node: unknown node %S" name)

let run t ~seconds = Engine.run_until t.sim (Engine.now t.sim +. seconds)
