(** The segmented-car topology: the guideline alternative to the HPE.

    The paper's guideline countermeasure list includes "CAN bus gateway:
    limit components with CAN bus access".  This module builds that
    architecture as the two-segment special case of {!Secpol_can.Topology}
    (spec {!Segment_map.two_segment_spec}): a powertrain bus (sensors,
    EV-ECU, EPS, engine, safety) and a comfort bus (infotainment,
    telematics, door locks) joined by a {!Secpol_can.Gateway} whose
    per-direction whitelists are derived from the message map and policy
    (an ID crosses a direction iff a designed, policy-permitted flow's
    path uses it).

    The ablation bench compares it with the flat-bus + HPE car: the
    gateway stops cross-segment injection of IDs that never legitimately
    cross, but any ID with a designed crossing is forwarded regardless of
    its true origin — per-ID, not per-node, enforcement. *)

type t = {
  sim : Secpol_sim.Engine.t;
  powertrain : Secpol_can.Bus.t;
  comfort : Secpol_can.Bus.t;
  gateway : Secpol_can.Gateway.t;
  state : State.t;
  nodes : (string * Secpol_can.Node.t) list;
}

val powertrain_nodes : string list

val comfort_nodes : string list

val crossing_ids : unit -> int list
(** Message IDs with a designed producer and consumer on opposite sides —
    the gateway whitelist (both directions). *)

val create : ?seed:int64 -> ?bitrate:float -> ?driving:bool -> unit -> t

val node : t -> string -> Secpol_can.Node.t
(** @raise Invalid_argument on unknown node names. *)

val run : t -> seconds:float -> unit
