module Threat = Secpol_threat.Threat
module Stride = Secpol_threat.Stride
module Dread = Secpol_threat.Dread
module Model = Secpol_threat.Model
module Derive = Secpol_policy.Derive

type row = {
  threat : Threat.t;
  paper_policy : Derive.access;
  paper_average : float;
}

let ev_ecu_spoof_disable_locks = "ev_ecu_spoof_disable_locks"

let ev_ecu_spoof_disable_sensors = "ev_ecu_spoof_disable_sensors"

let ev_ecu_tracking_disable = "ev_ecu_tracking_disable"

let ev_ecu_failsafe_override = "ev_ecu_failsafe_override"

let eps_deactivation = "eps_deactivation"

let engine_sensor_deactivation = "engine_sensor_deactivation"

let connectivity_component_modification = "connectivity_component_modification"

let connectivity_firmware_privacy = "connectivity_firmware_privacy"

let connectivity_modem_disable_emergency = "connectivity_modem_disable_emergency"

let connectivity_modem_disable_sensors = "connectivity_modem_disable_sensors"

let infotainment_browser_escalation = "infotainment_browser_escalation"

let infotainment_status_modification = "infotainment_status_modification"

let door_unlock_in_motion = "door_unlock_in_motion"

let door_lock_in_accident = "door_lock_in_accident"

let safety_false_failsafe = "safety_false_failsafe"

let safety_alarm_disable = "safety_alarm_disable"

let stride s =
  match Stride.of_string s with
  | Ok v -> v
  | Error e -> invalid_arg ("Threat_catalog: " ^ e)

let dread l =
  match Dread.of_list l with
  | Ok v -> v
  | Error e -> invalid_arg ("Threat_catalog: " ^ e)

let normal = Modes.name Modes.Normal

let fail_safe = Modes.name Modes.Fail_safe

let row ~id ~title ~description ~asset ~entry_points ~modes ~stride:s ~dread:d
    ~attack ~legit ~paper_policy ~paper_average =
  {
    threat =
      Threat.make ~id ~title ~description ~asset ~entry_points ~modes
        ~stride:(stride s) ~dread:(dread d) ~attack_operation:attack
        ~legitimate_operations:legit ();
    paper_policy;
    paper_average;
  }

open Names

let rows =
  [
    (* 1 *)
    row ~id:ev_ecu_spoof_disable_locks
      ~title:"Spoofed data over CAN bus causing disablement of ECU"
      ~description:
        "Spoofed lock/fail-safe signalling makes the propulsion controller \
         believe a disable condition holds while the car is in normal \
         operation."
      ~asset:ev_ecu
      ~entry_points:[ ep_door_locks; ep_safety_critical ]
      ~modes:[ normal ] ~stride:"STD" ~dread:[ 8; 5; 4; 6; 4 ]
      ~attack:Threat.Write ~legit:[ Threat.Read ] ~paper_policy:Derive.R
      ~paper_average:5.4;
    (* 2 *)
    row ~id:ev_ecu_spoof_disable_sensors
      ~title:"Spoofed sensor data causing disablement of ECU"
      ~description:
        "A forged obstacle/brake sensor feed triggers the ECU's emergency \
         reaction, denying propulsion."
      ~asset:ev_ecu
      ~entry_points:[ ep_sensors ]
      ~modes:[ normal ] ~stride:"STD" ~dread:[ 8; 5; 4; 6; 4 ]
      ~attack:Threat.Write ~legit:[ Threat.Read ] ~paper_policy:Derive.R
      ~paper_average:5.4;
    (* 3 *)
    row ~id:ev_ecu_tracking_disable
      ~title:"Disabled remote tracking system after theft"
      ~description:
        "The thief suppresses the ECU's remote tracking uplink so the \
         stolen vehicle cannot be located."
      ~asset:ev_ecu
      ~entry_points:[ ep_connectivity ]
      ~modes:[ normal ] ~stride:"SD" ~dread:[ 6; 3; 3; 6; 4 ]
      ~attack:Threat.Write
      ~legit:[ Threat.Read; Threat.Write ]
      ~paper_policy:Derive.RW ~paper_average:4.4;
    (* 4 *)
    row ~id:ev_ecu_failsafe_override
      ~title:"Fail-safe protection override to reactivate vehicle"
      ~description:
        "After a theft deactivation, the attacker replays enable commands \
         over the wireless link to restart the drivetrain."
      ~asset:ev_ecu
      ~entry_points:[ ep_connectivity ]
      ~modes:[ fail_safe ] ~stride:"STE" ~dread:[ 5; 5; 5; 7; 6 ]
      ~attack:Threat.Write ~legit:[ Threat.Read ] ~paper_policy:Derive.R
      ~paper_average:5.6;
    (* 5 *)
    row ~id:eps_deactivation
      ~title:"EPS deactivation through compromised CAN node"
      ~description:
        "Any compromised station broadcasts steering-assist shutdown \
         commands; steering becomes heavy at speed."
      ~asset:eps
      ~entry_points:[ ep_any_node ]
      ~modes:[ normal ] ~stride:"STD" ~dread:[ 5; 5; 5; 6; 7 ]
      ~attack:Threat.Write ~legit:[ Threat.Read ] ~paper_policy:Derive.R
      ~paper_average:5.6;
    (* 6 *)
    row ~id:engine_sensor_deactivation
      ~title:"Engine deactivation through compromised sensor"
      ~description:
        "A compromised sensor cluster forges values that drive the engine \
         controller into shutdown."
      ~asset:engine
      ~entry_points:[ ep_sensors ]
      ~modes:[ normal ] ~stride:"STD" ~dread:[ 6; 5; 4; 7; 5 ]
      ~attack:Threat.Write ~legit:[ Threat.Read ] ~paper_policy:Derive.R
      ~paper_average:5.4;
    (* 7 *)
    row ~id:connectivity_component_modification
      ~title:"Critical component modification during operation"
      ~description:
        "Pivoting from the drivetrain side, the attacker reconfigures the \
         telematics unit while the vehicle is in use."
      ~asset:asset_connectivity
      ~entry_points:[ ep_ev_ecu; ep_sensors ]
      ~modes:[ normal ] ~stride:"STIDE" ~dread:[ 7; 5; 5; 9; 4 ]
      ~attack:Threat.Write ~legit:[ Threat.Read ] ~paper_policy:Derive.R
      ~paper_average:6.0;
    (* 8 *)
    row ~id:connectivity_firmware_privacy
      ~title:"Privacy attack using modified radio firmware"
      ~description:
        "Modified radio firmware pushed through the infotainment unit \
         exfiltrates position and usage data."
      ~asset:asset_connectivity
      ~entry_points:[ ep_infotainment ]
      ~modes:[ normal ] ~stride:"TIE" ~dread:[ 7; 5; 5; 6; 5 ]
      ~attack:Threat.Write ~legit:[ Threat.Read ] ~paper_policy:Derive.R
      ~paper_average:5.6;
    (* 9 *)
    row ~id:connectivity_modem_disable_emergency
      ~title:"Prevent operation of fail-safe comms by disabling modem"
      ~description:
        "The emergency-call path is silenced by a forged modem shutdown \
         just when the fail-safe chain needs it."
      ~asset:asset_connectivity
      ~entry_points:[ ep_emergency; ep_door_locks ]
      ~modes:[ fail_safe ] ~stride:"TDE" ~dread:[ 6; 6; 7; 8; 6 ]
      ~attack:Threat.Write
      ~legit:[ Threat.Read; Threat.Write ]
      ~paper_policy:Derive.RW ~paper_average:6.6;
    (* 10 *)
    row ~id:connectivity_modem_disable_sensors
      ~title:"Prevent fail-safe comms via sensor/airbag path"
      ~description:
        "The same modem-silencing attack mounted through the crash-sensor \
         and airbag signalling path."
      ~asset:asset_connectivity
      ~entry_points:[ ep_sensors; ep_air_bags ]
      ~modes:[ fail_safe ] ~stride:"TDE" ~dread:[ 6; 6; 7; 8; 6 ]
      ~attack:Threat.Write ~legit:[ Threat.Read ] ~paper_policy:Derive.R
      ~paper_average:6.6;
    (* 11 *)
    row ~id:infotainment_browser_escalation
      ~title:"Exploit to gain access to higher control level"
      ~description:
        "A media-display browser exploit escalates into installing \
         software with access to vehicle control functions (the Jeep-style \
         pivot)."
      ~asset:infotainment
      ~entry_points:[ ep_media_browser ]
      ~modes:[ normal ] ~stride:"STE" ~dread:[ 7; 5; 6; 8; 6 ]
      ~attack:Threat.Write ~legit:[ Threat.Read ] ~paper_policy:Derive.R
      ~paper_average:6.4;
    (* 12 *)
    row ~id:infotainment_status_modification
      ~title:"Modification of car status values, GPS, speed, etc."
      ~description:
        "Forged status frames make the driver display lie about speed, \
         position and vehicle health."
      ~asset:infotainment
      ~entry_points:[ ep_sensors; ep_ev_ecu ]
      ~modes:[ normal ] ~stride:"STR" ~dread:[ 3; 5; 6; 4; 5 ]
      ~attack:Threat.Write ~legit:[ Threat.Read ] ~paper_policy:Derive.R
      ~paper_average:4.6;
    (* 13 *)
    row ~id:door_unlock_in_motion
      ~title:"Unlock attempt while in motion"
      ~description:
        "Remote or physical unlock signalling replayed while the vehicle \
         is being driven."
      ~asset:door_locks
      ~entry_points:[ ep_connectivity; ep_manual_open ]
      ~modes:[ normal ] ~stride:"TDE" ~dread:[ 8; 5; 3; 8; 5 ]
      ~attack:Threat.Write ~legit:[ Threat.Read ] ~paper_policy:Derive.R
      ~paper_average:5.8;
    (* 14 *)
    row ~id:door_lock_in_accident
      ~title:"Lock mechanism triggered during accident"
      ~description:
        "Forged lock commands during a crash keep occupants trapped; the \
         rescue chain legitimately needs write access to unlock."
      ~asset:door_locks
      ~entry_points:[ ep_connectivity; ep_safety_critical ]
      ~modes:[ fail_safe ] ~stride:"TDE" ~dread:[ 8; 6; 7; 8; 5 ]
      ~attack:Threat.Write ~legit:[ Threat.Write ] ~paper_policy:Derive.W
      ~paper_average:6.8;
    (* 15 *)
    row ~id:safety_false_failsafe
      ~title:"False triggering of fail-safe mode to unlock vehicle"
      ~description:
        "A forged crash condition flips the car into fail-safe, whose \
         unlock side-effect opens the doors for theft."
      ~asset:asset_safety_critical
      ~entry_points:[ ep_sensors ]
      ~modes:[ normal ] ~stride:"STE" ~dread:[ 7; 4; 5; 8; 4 ]
      ~attack:Threat.Write ~legit:[ Threat.Read ] ~paper_policy:Derive.R
      ~paper_average:5.6;
    (* 16 *)
    row ~id:safety_alarm_disable
      ~title:"Disable alarm and locking system to allow theft"
      ~description:
        "The alarm/locking controller is commanded off; arming is a \
         legitimate write, so coarse permissions leave residual risk."
      ~asset:asset_safety_critical
      ~entry_points:[ ep_sensors ]
      ~modes:[ normal ] ~stride:"TE" ~dread:[ 9; 4; 5; 9; 4 ]
      ~attack:Threat.Write ~legit:[ Threat.Write ] ~paper_policy:Derive.W
      ~paper_average:6.2;
  ]

let threats = List.map (fun r -> r.threat) rows

let find id = List.find_opt (fun r -> r.threat.Threat.id = id) rows

let model () =
  let m =
    Model.make_exn ~use_case:"Connected car"
      ~description:
        "Threat modelling of a connected car application use case (paper \
         Table I): CAN-bus-connected EV-ECU, EPS, engine, telematics, \
         infotainment, door locks, safety-critical controller and sensor \
         cluster, operating in normal, remote-diagnostic and fail-safe \
         modes."
      ~assets:Assets.all ~entry_points:Assets.entry_points
      ~modes:(List.map Modes.name Modes.all)
      ~threats ()
  in
  List.fold_left
    (fun m cm ->
      match Model.add_countermeasure m cm with
      | Ok m -> m
      | Error es ->
          invalid_arg ("Threat_catalog.model: " ^ String.concat "; " es))
    m
    (Derive.countermeasures m)

(* Threat entry points name attack surfaces; requests arrive as the asset
   names of the CAN nodes behind them, which is what policy rules bind. *)
let obligations () =
  Secpol_threat.Obligation.of_model
    ~subjects_of_entry_point:(fun ep ->
      List.map Names.asset_of_node (Names.nodes_of_entry_point ep))
    (model ())
