(** Table I of the paper: the sixteen connected-car threats with their
    entry points, STRIDE classification, DREAD component scores and derived
    R/W/RW policy.

    Every row stores the paper's printed policy cell and DREAD average
    alongside the threat so that tests and the Table-I bench can
    *recompute* both (via {!Secpol_threat.Dread.average} and
    {!Secpol_policy.Derive.row_access}) and compare against the paper.

    The paper's mode checkmark columns are not recoverable from the
    published text; the mode assignments here follow each threat's prose
    (e.g. "during accident" -> fail-safe) and are documented per row. *)

type row = {
  threat : Secpol_threat.Threat.t;
  paper_policy : Secpol_policy.Derive.access;  (** Table I "Policy" cell *)
  paper_average : float;  (** Table I printed DREAD average *)
}

val rows : row list
(** The sixteen rows in table order. *)

val threats : Secpol_threat.Threat.t list

val find : string -> row option
(** Lookup by threat id. *)

(** {2 Well-known threat ids} *)

val ev_ecu_spoof_disable_locks : string

val ev_ecu_spoof_disable_sensors : string

val ev_ecu_tracking_disable : string

val ev_ecu_failsafe_override : string

val eps_deactivation : string

val engine_sensor_deactivation : string

val connectivity_component_modification : string

val connectivity_firmware_privacy : string

val connectivity_modem_disable_emergency : string

val connectivity_modem_disable_sensors : string

val infotainment_browser_escalation : string

val infotainment_status_modification : string

val door_unlock_in_motion : string

val door_lock_in_accident : string

val safety_false_failsafe : string

val safety_alarm_disable : string

val model : unit -> Secpol_threat.Model.t
(** The complete car security model: assets, entry points, the three car
    modes, all sixteen threats, and one derived policy countermeasure per
    threat.  Validates by construction. *)

val obligations : unit -> Secpol_threat.Obligation.t list
(** The denial obligations of all sixteen threats, with entry points
    mapped to the policy subjects requests actually arrive as (the asset
    names of the nodes behind each entry point) — the mapping
    [secpolc verify --vehicle] and fleet campaigns check against. *)
