module Engine = Secpol_sim.Engine
module Bus = Secpol_can.Bus
module Node = Secpol_can.Node
module Topology = Secpol_can.Topology

type placement = [ `Central | `Distributed ]

let placement_name = function
  | `Central -> "central"
  | `Distributed -> "distributed"

let placement_of_name = function
  | "central" -> Some `Central
  | "distributed" -> Some `Distributed
  | _ -> None

type t = {
  sim : Engine.t;
  topo : Topology.t;
  state : State.t;
  placement : placement;
  nodes : (string * Node.t) list;
  hpes : (string * Secpol_hpe.Engine.t) list;
  policy_engine : Secpol_policy.Engine.t option;
  (* fail-safe HPE configs computed at build time: entering Fail_safe must
     not depend on the policy engine still answering (see Car) *)
  failsafe_configs : (string * Secpol_hpe.Config.t) list;
}

let builders =
  [
    (Names.sensors, Sensors.create);
    (Names.ev_ecu, Ev_ecu.create);
    (Names.eps, Eps.create);
    (Names.engine, Engine_ecu.create);
    (Names.telematics, Telematics.create);
    (Names.infotainment, Infotainment.create);
    (Names.door_locks, Door_locks.create);
    (Names.safety, Safety.create);
  ]

let provision_hpes hpes policy_engine mode =
  List.iter
    (fun (name, hpe) ->
      let config = Policy_map.hpe_config_for policy_engine ~mode ~node:name in
      Secpol_hpe.Registers.hard_reset (Secpol_hpe.Engine.registers hpe);
      match Secpol_hpe.Engine.provision hpe config with
      | Ok () -> ()
      | Error e ->
          invalid_arg
            (Printf.sprintf "Topology_car: HPE provisioning %s: %s" name e))
    hpes

let create ?(seed = 42L) ?(bitrate = 500_000.0) ?(driving = true)
    ?(placement = `Distributed) ?policy ?spec ?obs ?max_in_flight
    ?retry_backoff ?max_retries ?forward_timeout () =
  let policy =
    match policy with Some p -> p | None -> Policy_map.baseline ()
  in
  let spec = match spec with Some s -> s | None -> Segment_map.spec () in
  let sim = Engine.create ~seed () in
  let flows = Segment_map.flows ~policy ~spec () in
  let topo =
    Topology.create ~bitrate ?max_in_flight ?retry_backoff ?max_retries
      ?forward_timeout sim spec ~flows
  in
  Option.iter (fun reg -> Topology.attach_obs topo reg) obs;
  let state = if driving then State.driving () else State.create () in
  let nodes =
    List.map
      (fun (name, build) ->
        match Topology.segment_of topo name with
        | Some seg -> (name, build sim (Topology.bus topo seg) state)
        | None ->
            invalid_arg
              (Printf.sprintf "Topology_car: node %S is in no segment" name))
      builders
  in
  (* Central placement is the DiSPEL comparison point: enforcement lives
     only in the gateways' policy-derived whitelists (plus the ECUs' stock
     acceptance filters); distributed adds a per-node HPE bank on every
     segment, so a forged-but-legitimately-crossing ID is stopped at its
     source instead of being forwarded. *)
  let hpes, policy_engine, failsafe_configs =
    match placement with
    | `Central -> ([], None, [])
    | `Distributed ->
        let engine = Policy_map.engine ?obs policy in
        let hpes =
          List.map
            (fun (name, node) -> (name, Secpol_hpe.Engine.install ?obs node))
            nodes
        in
        provision_hpes hpes engine state.State.mode;
        let failsafe_configs =
          List.map
            (fun (name, _) ->
              ( name,
                Policy_map.hpe_config_for engine ~mode:Modes.Fail_safe
                  ~node:name ))
            hpes
        in
        (hpes, Some engine, failsafe_configs)
  in
  { sim; topo; state; placement; nodes; hpes; policy_engine; failsafe_configs }

let sim t = t.sim

let topology t = t.topo

let placement t = t.placement

let state t = t.state

let node t name =
  match List.assoc_opt name t.nodes with
  | Some n -> n
  | None ->
      invalid_arg (Printf.sprintf "Topology_car.node: unknown node %S" name)

let nodes t = t.nodes

let hpe t name = List.assoc_opt name t.hpes

let run t ~seconds = Engine.run_until t.sim (Engine.now t.sim +. seconds)

let mode t = t.state.State.mode

let set_mode t mode =
  t.state.State.mode <- mode;
  State.log t.state ~time:(Engine.now t.sim)
    (Printf.sprintf "car: mode -> %s" (Modes.name mode));
  match t.policy_engine with
  | Some engine -> provision_hpes t.hpes engine mode
  | None -> ()

let enter_fail_safe t ~reason =
  if t.state.State.mode <> Modes.Fail_safe then begin
    t.state.State.mode <- Modes.Fail_safe;
    t.state.State.failsafe_latched <- true;
    State.log t.state ~time:(Engine.now t.sim)
      (Printf.sprintf "car: fail-safe entered (%s)" reason);
    List.iter
      (fun (name, hpe) ->
        match List.assoc_opt name t.failsafe_configs with
        | None -> ()
        | Some config ->
            Secpol_hpe.Registers.hard_reset (Secpol_hpe.Engine.registers hpe);
            (match Secpol_hpe.Engine.provision hpe config with
            | Ok () -> ()
            | Error e ->
                invalid_arg
                  (Printf.sprintf "Topology_car: fail-safe provisioning %s: %s"
                     name e)))
      t.hpes
  end

let segments t = Topology.segments t.topo

let segment_of t node = Topology.segment_of t.topo node

let bus t seg = Topology.bus t.topo seg

let deliveries_in t seg =
  List.fold_left
    (fun acc n -> acc + Node.received_count (node t n))
    0
    (Topology.members t.topo seg)

let total_deliveries t =
  List.fold_left (fun acc (_, n) -> acc + Node.received_count n) 0 t.nodes

(* Enforcement blocks that hit designed traffic in one segment: write-gate
   blocks at the segment's own HPEs plus read-gate blocks of frames whose
   receiver is a designed consumer (the same definition as
   [Car.false_hpe_blocks], scoped to one bus). *)
let false_blocks_in t seg =
  let members = Topology.members t.topo seg in
  let write_blocks =
    List.fold_left
      (fun acc (name, h) ->
        if List.mem name members then acc + Secpol_hpe.Engine.write_blocks h
        else acc)
      0 t.hpes
  in
  let bad_read_blocks =
    Secpol_can.Trace.count
      (Bus.trace (bus t seg))
      (fun e ->
        match e.Secpol_can.Trace.event with
        | Secpol_can.Trace.Rx_blocked (receiver, _) -> (
            match e.Secpol_can.Trace.frame.Secpol_can.Frame.id with
            | Secpol_can.Identifier.Standard id -> (
                match Messages.find id with
                | Some m -> List.mem receiver m.consumers
                | None -> false)
            | Secpol_can.Identifier.Extended _ -> false)
        | _ -> false)
  in
  write_blocks + bad_read_blocks
