(** The multi-segment reference car with a placement switch.

    Builds the full ECU set on a {!Secpol_can.Topology} graph (default:
    {!Segment_map.spec}, the four-segment star) with routing derived from
    the message map filtered by the policy, and distributes enforcement
    according to [placement] — the DiSPEL central-vs-distributed
    comparison as one flag:

    - [`Central]: enforcement lives only in the gateways' policy-derived
      ID whitelists (plus stock ECU acceptance filters).  A forged frame
      whose ID legitimately crosses is forwarded regardless of origin —
      the per-ID residual weakness.
    - [`Distributed] (default): every node additionally carries an HPE
      provisioned from the policy for the current mode, so forged traffic
      is blocked at its source segment and spoofed IDs at the write gate.

    Fail-safe entry mirrors {!Car}: HPE configs for [Fail_safe] are cached
    at build time so degradation never depends on the policy engine
    answering. *)

type placement = [ `Central | `Distributed ]

val placement_name : placement -> string

val placement_of_name : string -> placement option

type t

val create :
  ?seed:int64 ->
  ?bitrate:float ->
  ?driving:bool ->
  ?placement:placement ->
  ?policy:Secpol_policy.Ast.policy ->
  ?spec:Secpol_can.Topology.spec ->
  ?obs:Secpol_obs.Registry.t ->
  ?max_in_flight:int ->
  ?retry_backoff:float ->
  ?max_retries:int ->
  ?forward_timeout:float ->
  unit ->
  t
(** The gateway bounds ([max_in_flight] etc.) apply to every gateway;
    defaults are {!Secpol_can.Gateway.connect}'s.  [obs] registers every
    segment bus (under [can.seg.<segment>.*]), gateway, HPE and the
    policy engine in one registry. *)

val sim : t -> Secpol_sim.Engine.t

val topology : t -> Secpol_can.Topology.t

val placement : t -> placement

val state : t -> State.t

val node : t -> string -> Secpol_can.Node.t
(** @raise Invalid_argument on unknown node names. *)

val nodes : t -> (string * Secpol_can.Node.t) list

val hpe : t -> string -> Secpol_hpe.Engine.t option
(** [None] for every node under [`Central] placement. *)

val run : t -> seconds:float -> unit

val mode : t -> Modes.t

val set_mode : t -> Modes.t -> unit
(** Switch operating mode and (under [`Distributed]) re-provision every
    HPE for it. *)

val enter_fail_safe : t -> reason:string -> unit
(** Latch [Fail_safe] from build-time cached configs — never consults the
    policy engine. *)

val segments : t -> string list

val segment_of : t -> string -> string option

val bus : t -> string -> Secpol_can.Bus.t
(** By segment name.  @raise Invalid_argument on unknown names. *)

val deliveries_in : t -> string -> int
(** Frames delivered to the segment's member nodes so far.
    @raise Invalid_argument on unknown segment names. *)

val total_deliveries : t -> int

val false_blocks_in : t -> string -> int
(** Enforcement blocks that hit designed traffic in one segment: HPE
    write-gate blocks at member nodes plus read-gate blocks of frames
    whose receiver is a designed consumer.  Always 0 under [`Central]. *)
