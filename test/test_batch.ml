(* Tests for the batched decision path: {!Engine.decide_batch} must agree
   decision-for-decision with per-request {!Engine.decide} — across all
   three strategies, both engine modes, random rate-limiter states and
   batch sizes 0/1/odd/huge — and the compiled path must not allocate per
   request. *)

module Ast = Secpol_policy.Ast
module Parser = Secpol_policy.Parser
module Compile = Secpol_policy.Compile
module Ir = Secpol_policy.Ir
module Engine = Secpol_policy.Engine
module Batch = Secpol_policy.Batch

let quick name f = Alcotest.test_case name `Quick f

let compile_ok src =
  match Compile.compile (Result.get_ok (Parser.parse src)) with
  | Ok (db, _) -> db
  | Error issues ->
      Alcotest.fail
        ("compile failed: "
        ^ String.concat "; "
            (List.map (fun (i : Compile.issue) -> i.message) issues))

(* A policy exercising every verdict shape the compiler produces:
   unconditional buckets (Const), mode-only buckets (By_mode), message
   ranges (Range1 and multi-interval Ranges) and a rate-limited allow
   whose outcome depends on consumption order. *)
let mixed_source =
  {|
policy "batch_mix" version 1 {
  default deny;
  asset engine {
    allow read from any;
    deny  write from infotainment;
  }
  mode normal, fail_safe {
    asset brakes {
      allow write from safety messages 0x100..0x10f;
      allow read from dashboard;
    }
  }
  mode normal {
    asset telemetry {
      allow write from sensors messages 0x200..0x20f, 0x300..0x30f;
      allow read from cloud rate 3 per 1000;
    }
  }
}
|}

let subjects =
  [| "sensors"; "safety"; "dashboard"; "infotainment"; "cloud"; "stranger" |]

let assets = [| "engine"; "brakes"; "telemetry"; "unknown_asset" |]

let modes = [| "normal"; "fail_safe"; "workshop" |]

let strategies =
  [ Engine.Deny_overrides; Engine.Allow_overrides; Engine.First_match ]

let engine_modes = [ `Interpreted; `Compiled ]

(* Requests as (request, now) pairs with non-decreasing timestamps, so the
   sliding-window rate limiter sees a realistic clock. *)
let request_gen =
  QCheck.Gen.(
    let* subject = oneofa subjects in
    let* asset = oneofa assets in
    let* mode = oneofa modes in
    let* op = oneofl [ Ir.Read; Ir.Write ] in
    let* msg_id =
      oneof [ return None; map (fun id -> Some id) (0x0f0 -- 0x320) ]
    in
    let* dt = 0 -- 300 in
    return ({ Ir.mode; subject; asset; op; msg_id }, float_of_int dt /. 1000.))

let sequence reqs =
  let t = ref 0.0 in
  List.map
    (fun (req, dt) ->
      t := !t +. dt;
      (req, !t))
    reqs

(* Sizes from the issue list: empty, singleton, odd, and one big enough to
   force arena growth and cross cache lines. *)
let size_gen = QCheck.Gen.oneofl [ 0; 1; 3; 7; 33; 257 ]

let scalar_decisions engine reqs =
  List.map (fun (req, now) -> (Engine.decide ~now engine req).Engine.decision) reqs

let batch_decisions engine reqs =
  let n = List.length reqs in
  let b = Batch.create ~capacity:(max 1 n) () in
  List.iter (fun (req, now) -> Batch.push ~now b req) reqs;
  let out = Array.make (max 1 n) Ast.Deny in
  Engine.decide_batch engine b ~out;
  Array.to_list (Array.sub out 0 n)

(* The property: two engines over the same db, primed with the same scalar
   prefix (so their rate-limiter budgets are in the same — random — state),
   must produce identical decisions whether the tail is served one request
   at a time or as one batch. *)
let prop_batch_equals_scalar =
  let gen =
    QCheck.Gen.(
      let* prefix = list_size (0 -- 20) request_gen in
      let* size = size_gen in
      let* body = list_size (return size) request_gen in
      return (sequence prefix, sequence body))
  in
  QCheck.Test.make ~name:"decide_batch = map decide (all strategies/modes)"
    ~count:150 (QCheck.make gen) (fun (prefix, body) ->
      let db = compile_ok mixed_source in
      List.for_all
        (fun strategy ->
          List.for_all
            (fun mode ->
              let scalar =
                Engine.create ~strategy ~mode ~cache:false db
              in
              let batched =
                Engine.create ~strategy ~mode ~cache:false db
              in
              List.iter
                (fun (req, now) ->
                  ignore (Engine.decide ~now scalar req);
                  ignore (Engine.decide ~now batched req))
                prefix;
              scalar_decisions scalar body = batch_decisions batched body)
            engine_modes)
        strategies)

let test_huge_batch () =
  let db = compile_ok mixed_source in
  let n = 8192 in
  let reqs =
    List.init n (fun i ->
        ( {
            Ir.mode = modes.(i mod Array.length modes);
            subject = subjects.(i mod Array.length subjects);
            asset = assets.(i mod Array.length assets);
            op = (if i mod 2 = 0 then Ir.Read else Ir.Write);
            msg_id = (if i mod 3 = 0 then None else Some (0x0f0 + (i mod 600)));
          },
          float_of_int i /. 100. ))
  in
  List.iter
    (fun strategy ->
      let scalar = Engine.create ~strategy ~mode:`Compiled ~cache:false db in
      let batched = Engine.create ~strategy ~mode:`Compiled ~cache:false db in
      Alcotest.(check (list bool))
        "huge batch agrees"
        (List.map (fun d -> d = Ast.Allow) (scalar_decisions scalar reqs))
        (List.map (fun d -> d = Ast.Allow) (batch_decisions batched reqs)))
    strategies

(* No rates here: rate callbacks are outside the zero-allocation contract
   (they box the timestamp), so this policy keeps the whole batch on the
   contract's path while still exercising dispatch, modes and ranges. *)
let unrated_source =
  {|
policy "batch_unrated" version 1 {
  default deny;
  asset engine {
    allow read from any;
  }
  mode normal, fail_safe {
    asset brakes {
      allow write from safety messages 0x100..0x10f;
      deny  write from infotainment;
    }
  }
}
|}

(* Minor-heap usage of one decide_batch call over a warmed engine/arena.
   Per-request allocation would make the delta grow with the batch, so
   asserting delta(8192 requests) = delta(1 request) pins the per-request
   cost to exactly zero while tolerating the O(1) per-call constants (the
   allow-count ref, Gc.minor_words' own boxed result). *)
let minor_delta engine n =
  let b = Batch.create ~capacity:n () in
  for i = 0 to n - 1 do
    Batch.push b
      {
        Ir.mode = (if i mod 2 = 0 then "normal" else "fail_safe");
        subject = subjects.(i mod Array.length subjects);
        asset = assets.(i mod Array.length assets);
        op = (if i mod 2 = 0 then Ir.Read else Ir.Write);
        msg_id = (if i mod 3 = 0 then None else Some (0x100 + (i mod 32)));
      }
  done;
  let out = Array.make n Ast.Deny in
  Engine.decide_batch engine b ~out;
  (* warm: mode memo, lazy engine state *)
  let w0 = Gc.minor_words () in
  Engine.decide_batch engine b ~out;
  Gc.minor_words () -. w0

let test_zero_allocation () =
  let db = compile_ok unrated_source in
  let engine = Engine.create ~mode:`Compiled ~cache:false db in
  let small = minor_delta engine 1 in
  let large = minor_delta engine 8192 in
  Alcotest.(check (float 0.5))
    "minor words are batch-size independent" small large

let () =
  Alcotest.run "secpol_batch"
    [
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_batch_equals_scalar;
          quick "huge batch (8192) agrees with scalar" test_huge_batch;
        ] );
      ("allocation", [ quick "compiled batch path is zero-allocation"
                         test_zero_allocation ]);
    ]
