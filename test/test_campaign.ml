(* Tests for the fleet campaign engine: vehicle instances over shared
   tables, threat-trigger plans, verifier-gated staged rollouts and the
   determinism of the whole report across seeds and domain counts. *)

module Campaign = Secpol_lifecycle.Campaign
module Instance = Secpol_vehicle.Instance
module Policy_map = Secpol_vehicle.Policy_map
module Names = Secpol_vehicle.Names
module Messages = Secpol_vehicle.Messages
module Plan = Secpol_faults.Plan
module Ast = Secpol_policy.Ast
module Ir = Secpol_policy.Ir
module Engine = Secpol_policy.Engine
module Json = Secpol_policy.Json

let check = Alcotest.check

let quick name f = Alcotest.test_case name `Quick f

let slow name f = Alcotest.test_case name `Slow f

let decision =
  Alcotest.testable
    (fun ppf d ->
      Format.pp_print_string ppf
        (match d with Ast.Allow -> "allow" | Ast.Deny -> "deny"))
    ( = )

let hardened_db = lazy (Policy_map.compile (Policy_map.hardened ~version:2 ()))

let lock_rules db = Ir.rules_for_asset db Names.door_locks

let lock_req =
  {
    Ir.mode = "normal";
    subject = Names.asset_connectivity;
    asset = Names.door_locks;
    op = Ir.Write;
    msg_id = Some Messages.lock_command;
  }

(* ---------- Instance ---------- *)

let test_instance_state () =
  let i = Instance.create ~id:7 ~version:1 () in
  check Alcotest.int "id" 7 (Instance.id i);
  check Alcotest.int "version" 1 (Instance.version i);
  check Alcotest.string "mode" "normal" (Instance.mode i);
  Instance.set_mode i "fail_safe";
  check Alcotest.string "mode set" "fail_safe" (Instance.mode i);
  Instance.install i ~version:2;
  check Alcotest.int "installed" 2 (Instance.version i)

(* the hardened lock budget is 2 per 10 s: a 3-frame burst sheds its
   third frame, per vehicle, not per fleet *)
let test_instance_budgets_are_private () =
  let db = Lazy.force hardened_db in
  let rules = lock_rules db and default = db.Ir.default in
  let a = Instance.create ~id:0 ~version:2 () in
  let b = Instance.create ~id:1 ~version:2 () in
  let burst inst =
    List.init 3 (fun k ->
        Instance.decide inst ~rules ~default ~now:(float_of_int k) lock_req)
  in
  check (Alcotest.list decision) "a's burst shaped"
    [ Ast.Allow; Ast.Allow; Ast.Deny ] (burst a);
  (* a's consumption must not have touched b *)
  check (Alcotest.list decision) "b unaffected"
    [ Ast.Allow; Ast.Allow; Ast.Deny ] (burst b);
  check Alcotest.int "one window live per vehicle" 1 (Instance.live_budgets a)

let test_instance_install_resets_budgets () =
  let db = Lazy.force hardened_db in
  let rules = lock_rules db and default = db.Ir.default in
  let i = Instance.create ~id:0 ~version:2 () in
  for k = 0 to 2 do
    ignore (Instance.decide i ~rules ~default ~now:(float_of_int k) lock_req)
  done;
  check decision "budget exhausted" Ast.Deny
    (Instance.decide i ~rules ~default ~now:3.0 lock_req);
  Instance.install i ~version:3;
  check Alcotest.int "budgets dropped" 0 (Instance.live_budgets i);
  check decision "fresh budget after install" Ast.Allow
    (Instance.decide i ~rules ~default ~now:4.0 lock_req)

(* Instance.decide must agree with a private Engine fed the same request
   sequence — same Deny_overrides fold, same window semantics *)
let test_instance_matches_engine () =
  let db = Lazy.force hardened_db in
  let rules = lock_rules db and default = db.Ir.default in
  let fail_safe_attack = { lock_req with Ir.mode = "fail_safe" } in
  let unknown = { lock_req with Ir.subject = "infotainment" } in
  let sequence =
    [
      (0.0, lock_req);
      (0.1, lock_req);
      (0.2, lock_req);
      (* deny rules never consume budget *)
      (0.3, fail_safe_attack);
      (* one window later the budget has rolled over *)
      (11.0, lock_req);
      (11.1, unknown);
    ]
  in
  let inst = Instance.create ~id:0 ~version:2 () in
  let engine = Engine.create ~cache:false db in
  List.iteri
    (fun k (now, req) ->
      let expected = (Engine.decide ~now engine req).Engine.decision in
      let got = Instance.decide inst ~rules ~default ~now req in
      check decision (Printf.sprintf "step %d" k) expected got)
    sequence

(* ---------- Plan.threat_trigger ---------- *)

let test_threat_trigger_plan () =
  let p = Plan.threat_trigger ~at:6.0 ~horizon:30.0 () in
  (match Plan.validate p with
  | Ok () -> ()
  | Error e -> Alcotest.failf "plan invalid: %s" e);
  (match Plan.threat_window p with
  | Some (on, off, msg_id) ->
      check (Alcotest.float 1e-9) "activation" 6.0 on;
      check (Alcotest.float 1e-9) "clearance at horizon" 30.0 off;
      check Alcotest.int "attack vector" Messages.lock_command msg_id
  | None -> Alcotest.fail "no threat window");
  check Alcotest.bool "not degrading" false (Plan.degrading p);
  Alcotest.check_raises "activation past horizon"
    (Invalid_argument "Plan.threat_trigger: activation outside [0, horizon)")
    (fun () -> ignore (Plan.threat_trigger ~at:30.0 ~horizon:30.0 ()))

let test_threat_window_absent () =
  check Alcotest.bool "stall plan has no window" true
    (Plan.threat_window (Plan.stall ~horizon:4.0) = None)

(* ---------- Campaign runs ---------- *)

let small_config ?(fleet = 1_500) ?(seed = 11L) ?(domains = 1) () =
  Campaign.default_config ~fleet ~seed ~domains ~quick:true ()

let run_ok ?old_policy ?new_policy cfg =
  match Campaign.run ?old_policy ?new_policy cfg with
  | Ok r -> r
  | Error e -> Alcotest.failf "campaign failed: %s" e

let test_campaign_completes () =
  let cfg = small_config () in
  let r = run_ok cfg in
  check Alcotest.bool "gate passed" true r.Campaign.gate.Campaign.passed;
  check Alcotest.int "no widenings" 0 r.Campaign.gate.Campaign.widened;
  List.iter
    (fun (s : Campaign.stage_report) ->
      check Alcotest.bool (s.Campaign.stage.Campaign.name ^ " started") true
        s.Campaign.started)
    r.Campaign.stages;
  check Alcotest.int "three stages" 3 (List.length r.Campaign.stages);
  check Alcotest.int "stages cover the fleet" cfg.Campaign.fleet
    (List.fold_left
       (fun acc (s : Campaign.stage_report) -> acc + s.Campaign.vehicles)
       0 r.Campaign.stages);
  check Alcotest.int "versions cover the fleet" cfg.Campaign.fleet
    (List.fold_left (fun acc (_, n) -> acc + n) 0 r.Campaign.versions);
  (* designed traffic stays designed under both versions *)
  check Alcotest.int "no benign denial" 0 r.Campaign.benign_denied;
  (* per-vehicle budgets shape the 3-frame bursts once hardened *)
  check Alcotest.bool "bursts shaped" true (r.Campaign.lock_denied > 0);
  check Alcotest.int "ota mitigation accounted" cfg.Campaign.fleet
    (r.Campaign.ota.Campaign.mitigated + r.Campaign.ota.Campaign.never);
  check Alcotest.bool "most of the fleet mitigated" true
    (r.Campaign.ota.Campaign.mitigated > cfg.Campaign.fleet * 9 / 10);
  check Alcotest.bool "ota beats recall at the median" true
    (r.Campaign.ota.Campaign.p50_days < r.Campaign.recall.Campaign.p50_days);
  check Alcotest.bool "an order of magnitude faster" true
    (r.Campaign.speedup_p50 >= 10.0)

let strip_volatile = function
  | Json.Obj fields ->
      Json.Obj
        (List.filter
           (fun (k, _) ->
             k <> "elapsed_s" && k <> "throughput_per_s" && k <> "domains")
           fields)
  | j -> j

let report_fingerprint r = Json.to_string (strip_volatile (Campaign.to_json r))

let test_campaign_deterministic () =
  let a = run_ok (small_config ()) in
  let b = run_ok (small_config ()) in
  check Alcotest.string "same seed, same report" (report_fingerprint a)
    (report_fingerprint b);
  let c = run_ok (small_config ~seed:12L ()) in
  check Alcotest.bool "different seed, different report" true
    (report_fingerprint a <> report_fingerprint c)

let test_campaign_domain_count_invariant () =
  let a = run_ok (small_config ~domains:1 ()) in
  let b = run_ok (small_config ~domains:3 ()) in
  check Alcotest.string "1 domain == 3 domains" (report_fingerprint a)
    (report_fingerprint b)

let test_campaign_gate_refuses_widened_update () =
  let cfg = small_config ~fleet:600 () in
  let r = run_ok ~new_policy:(Policy_map.permissive ~version:2 ()) cfg in
  check Alcotest.bool "gate refused" false r.Campaign.gate.Campaign.passed;
  check Alcotest.bool "widenings detected" true
    (r.Campaign.gate.Campaign.widened > 0);
  List.iter
    (fun (s : Campaign.stage_report) ->
      check Alcotest.bool "no stage started" false s.Campaign.started;
      check Alcotest.int "nothing adopted" 0 s.Campaign.adopted)
    r.Campaign.stages;
  check Alcotest.int "whole fleet still on v1" cfg.Campaign.fleet
    (List.assoc 1 r.Campaign.versions);
  check Alcotest.int "nothing mitigated" 0 r.Campaign.ota.Campaign.mitigated;
  (* the old policy keeps answering traffic while the update is refused *)
  check Alcotest.bool "fleet kept serving decisions" true
    (r.Campaign.decisions > 0)

let test_campaign_validation () =
  let expect_error what cfg =
    match Campaign.run cfg with
    | Ok _ -> Alcotest.failf "%s: expected an error" what
    | Error e ->
        check Alcotest.bool (what ^ " mentions campaign") true
          (String.length e >= 9 && String.sub e 0 9 = "campaign:")
  in
  let cfg = small_config () in
  expect_error "empty fleet" { cfg with Campaign.fleet = 0 };
  expect_error "no domains" { cfg with Campaign.domains = 0 };
  expect_error "no stages" { cfg with Campaign.stages = [] };
  expect_error "descending fractions"
    {
      cfg with
      Campaign.stages =
        [
          { Campaign.name = "a"; fraction = 0.5; start_day = 0.0 };
          { Campaign.name = "b"; fraction = 0.4; start_day = 1.0 };
        ];
    };
  expect_error "threat past horizon"
    {
      cfg with
      Campaign.plan = Plan.threat_trigger ~at:40.0 ~horizon:50.0 ();
    };
  expect_error "plan without threat"
    { cfg with Campaign.plan = Plan.stall ~horizon:4.0 };
  expect_error "unknown threat" { cfg with Campaign.threat_id = "nope" }

let () =
  Alcotest.run "campaign"
    [
      ( "instance",
        [
          quick "state" test_instance_state;
          quick "budgets are per-vehicle" test_instance_budgets_are_private;
          quick "install resets budgets" test_instance_install_resets_budgets;
          quick "matches a private engine" test_instance_matches_engine;
        ] );
      ( "plan",
        [
          quick "threat trigger" test_threat_trigger_plan;
          quick "window absent" test_threat_window_absent;
        ] );
      ( "campaign",
        [
          slow "completes and mitigates" test_campaign_completes;
          slow "deterministic" test_campaign_deterministic;
          slow "domain-count invariant" test_campaign_domain_count_invariant;
          slow "gate refuses widened update"
            test_campaign_gate_refuses_widened_update;
          quick "validation" test_campaign_validation;
        ] );
    ]
