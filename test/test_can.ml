(* Tests for the CAN bus simulator: identifiers, CRC, stuffing, frames,
   error confinement, filters, controller, bus and node. *)

module Identifier = Secpol_can.Identifier
module Crc = Secpol_can.Crc
module Bitstuff = Secpol_can.Bitstuff
module Frame = Secpol_can.Frame
module Errors = Secpol_can.Errors
module Acceptance = Secpol_can.Acceptance
module Transceiver = Secpol_can.Transceiver
module Controller = Secpol_can.Controller
module Bus = Secpol_can.Bus
module Node = Secpol_can.Node
module Trace = Secpol_can.Trace
module Engine = Secpol_sim.Engine
module Rng = Secpol_sim.Rng

let check = Alcotest.check

let quick name f = Alcotest.test_case name `Quick f

(* ---------- Binary heap (the bus arbitration queue) ---------- *)

module Binheap = Secpol_can.Binheap

let heap_drain h =
  let rec go acc =
    match Binheap.pop h with None -> List.rev acc | Some x -> go (x :: acc)
  in
  go []

let prop_binheap_sorted =
  QCheck.Test.make ~name:"binheap pops in cmp order" ~count:300
    QCheck.(list (int_bound 1000))
    (fun xs ->
      let h = Binheap.create ~cmp:compare () in
      List.iter (Binheap.push h) xs;
      heap_drain h = List.sort compare xs)

let test_binheap_basics () =
  let h = Binheap.create ~capacity:2 ~cmp:compare () in
  Alcotest.(check bool) "empty" true (Binheap.is_empty h);
  Alcotest.(check (option int)) "peek empty" None (Binheap.peek h);
  Alcotest.(check (option int)) "pop empty" None (Binheap.pop h);
  List.iter (Binheap.push h) [ 5; 1; 4; 1; 3 ];
  check Alcotest.int "length" 5 (Binheap.length h);
  Alcotest.(check (option int)) "peek is min" (Some 1) (Binheap.peek h);
  check Alcotest.int "peek does not remove" 5 (Binheap.length h);
  Alcotest.(check (list int)) "duplicates survive" [ 1; 1; 3; 4; 5 ]
    (heap_drain h)

let test_binheap_drain_if () =
  let h = Binheap.create ~cmp:compare () in
  for i = 0 to 9 do
    Binheap.push h i
  done;
  let evens = Binheap.drain_if h (fun x -> x mod 2 = 0) in
  Alcotest.(check (list int)) "dropped the evens" [ 0; 2; 4; 6; 8 ]
    (List.sort compare evens);
  check Alcotest.int "survivors stay" 5 (Binheap.length h);
  Alcotest.(check (list int)) "survivors still pop in order" [ 1; 3; 5; 7; 9 ]
    (heap_drain h);
  Alcotest.(check (list int)) "drain on empty" []
    (Binheap.drain_if h (fun _ -> true))

(* ---------- Identifiers ---------- *)

let test_id_ranges () =
  check Alcotest.int "standard" 0x7FF (Identifier.raw (Identifier.standard 0x7FF));
  check Alcotest.int "extended" 0x1FFFFFFF
    (Identifier.raw (Identifier.extended 0x1FFFFFFF));
  Alcotest.check_raises "standard overflow"
    (Invalid_argument "Identifier.standard: 0x800 out of 11-bit range")
    (fun () -> ignore (Identifier.standard 0x800));
  (match Identifier.standard (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted negative id")

let test_id_arbitration () =
  let cmp a b = Identifier.arbitration_compare a b in
  Alcotest.(check bool) "lower wins" true
    (cmp (Identifier.standard 0x100) (Identifier.standard 0x200) < 0);
  Alcotest.(check bool) "equal" true
    (cmp (Identifier.standard 5) (Identifier.standard 5) = 0);
  (* same base id: standard beats extended *)
  let std = Identifier.standard 0x123 in
  let ext = Identifier.extended (0x123 lsl 18) in
  Alcotest.(check bool) "std beats ext on equal base" true (cmp std ext < 0);
  (* extended ordering by extension when bases equal *)
  let e1 = Identifier.extended ((0x123 lsl 18) lor 1) in
  let e2 = Identifier.extended ((0x123 lsl 18) lor 2) in
  Alcotest.(check bool) "extension breaks tie" true (cmp e1 e2 < 0);
  (* base id dominates: extended with lower base beats standard higher base *)
  let low_ext = Identifier.extended (0x050 lsl 18) in
  Alcotest.(check bool) "lower base wins regardless of format" true
    (cmp low_ext std < 0)

let test_id_base () =
  check Alcotest.int "standard base" 0x123 (Identifier.base_id (Identifier.standard 0x123));
  check Alcotest.int "extended base" 0x7FF
    (Identifier.base_id (Identifier.extended (0x7FF lsl 18)))

(* ---------- CRC ---------- *)

let test_crc_stable () =
  let bits = [ true; false; true; true; false ] in
  check Alcotest.int "deterministic" (Crc.compute bits) (Crc.compute bits);
  Alcotest.(check bool) "15-bit" true (Crc.compute bits land lnot 0x7FFF = 0)

let test_crc_detects_flip () =
  let bits = List.init 64 (fun i -> i mod 3 = 0) in
  let flipped = List.mapi (fun i b -> if i = 10 then not b else b) bits in
  Alcotest.(check bool) "flip changes CRC" true
    (Crc.compute bits <> Crc.compute flipped)

let test_crc_to_bits () =
  let crc = Crc.compute [ true; true; false ] in
  let bits = Crc.to_bits crc in
  check Alcotest.int "width" 15 (List.length bits);
  let back = List.fold_left (fun acc b -> (acc lsl 1) lor Bool.to_int b) 0 bits in
  check Alcotest.int "round trip" crc back

(* ---------- Bit stuffing ---------- *)

let test_stuff_simple () =
  let five = [ true; true; true; true; true ] in
  let stuffed = Bitstuff.stuff five in
  check Alcotest.int "one stuff bit" 6 (List.length stuffed);
  Alcotest.(check bool) "stuff bit is opposite" false (List.nth stuffed 5)

let test_stuff_restarts_run () =
  (* 10 equal bits -> stuff after 5, then the stuff bit restarts the count *)
  let ten = List.init 10 (fun _ -> true) in
  let stuffed = Bitstuff.stuff ten in
  check Alcotest.int "length" 12 (List.length stuffed)

let test_unstuff_violation () =
  let six = List.init 6 (fun _ -> true) in
  match Bitstuff.unstuff six with
  | Ok _ -> Alcotest.fail "accepted six equal bits"
  | Error _ -> ()

let prop_stuff_roundtrip =
  QCheck.Test.make ~name:"stuff/unstuff round trip" ~count:500
    QCheck.(list_of_size Gen.(0 -- 200) bool)
    (fun bits ->
      match Bitstuff.unstuff (Bitstuff.stuff bits) with
      | Ok bits' -> bits = bits'
      | Error _ -> false)

let prop_stuffed_never_six =
  QCheck.Test.make ~name:"stuffed stream never has six equal bits" ~count:500
    QCheck.(list_of_size Gen.(0 -- 200) bool)
    (fun bits ->
      let stuffed = Bitstuff.stuff bits in
      let rec scan run prev = function
        | [] -> true
        | b :: rest ->
            let run = if b = prev then run + 1 else 1 in
            run <= 5 && scan run b rest
      in
      match stuffed with [] -> true | b :: rest -> scan 1 b rest)

let prop_stuffed_length =
  QCheck.Test.make ~name:"stuffed_length matches stuff" ~count:500
    QCheck.(list_of_size Gen.(0 -- 200) bool)
    (fun bits ->
      Bitstuff.stuffed_length bits = List.length (Bitstuff.stuff bits))

(* ---------- Frames ---------- *)

let test_frame_construction () =
  let f = Frame.data_std 0x0F0 "\x01\x02\x03" in
  check Alcotest.int "dlc" 3 f.Frame.dlc;
  Alcotest.(check bool) "not remote" false f.Frame.rtr;
  Alcotest.(check (list int)) "payload bytes" [ 1; 2; 3 ] (Frame.payload_bytes f);
  Alcotest.check_raises "payload too long"
    (Invalid_argument "Frame.data: payload exceeds 8 bytes") (fun () ->
      ignore (Frame.data_std 1 "123456789"))

let test_remote_frame () =
  let f = Frame.remote (Identifier.standard 0x123) ~dlc:4 in
  Alcotest.(check bool) "rtr" true f.Frame.rtr;
  check Alcotest.int "dlc" 4 f.Frame.dlc;
  check Alcotest.string "no payload" "" f.Frame.payload;
  Alcotest.check_raises "dlc range" (Invalid_argument "Frame.remote: dlc outside 0..8")
    (fun () -> ignore (Frame.remote (Identifier.standard 1) ~dlc:9))

let test_frame_wire_roundtrip_basic () =
  let cases =
    [
      Frame.data_std 0x000 "";
      Frame.data_std 0x7FF "\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF";
      Frame.data_ext 0x1FFFFFFF "\x00";
      Frame.remote (Identifier.standard 0x123) ~dlc:8;
      Frame.remote (Identifier.extended 0x12345) ~dlc:0;
    ]
  in
  List.iter
    (fun f ->
      match Frame.of_wire (Frame.to_wire f) with
      | Ok f' -> Alcotest.(check bool) "round trip" true (Frame.equal f f')
      | Error e -> Alcotest.fail e)
    cases

let test_frame_wire_length () =
  let f = Frame.data_std 0x100 "\x01" in
  check Alcotest.int "length matches" (List.length (Frame.to_wire f))
    (Frame.wire_length f);
  (* standard frame, 1 data byte: 1+11+1+1+1+4+8+15 = 42 bits + stuffing + 10 trailer *)
  Alcotest.(check bool) "plausible size" true
    (Frame.wire_length f >= 52 && Frame.wire_length f <= 60)

let test_frame_transmission_time () =
  let f = Frame.data_std 0x100 "\x01" in
  let t = Frame.transmission_time f ~bitrate:500_000.0 in
  Alcotest.(check bool) "plausible time" true (t > 0.0001 && t < 0.0002);
  Alcotest.check_raises "bad bitrate"
    (Invalid_argument "Frame.transmission_time: bitrate <= 0") (fun () ->
      ignore (Frame.transmission_time f ~bitrate:0.0))

let test_frame_corrupt_detected () =
  let f = Frame.data_std 0x2A5 "\xDE\xAD" in
  let wire = Frame.to_wire f in
  let rng = Rng.create 5L in
  let detected = ref 0 in
  for _ = 1 to 50 do
    match Frame.of_wire (Transceiver.corrupt rng wire) with
    | Ok f' when Frame.equal f f' -> ()
    | Ok _ | Error _ -> incr detected
  done;
  (* single bit flips must essentially always be detected (CRC-15) *)
  Alcotest.(check bool)
    (Printf.sprintf "detected %d/50" !detected)
    true (!detected >= 49)

let test_frame_truncated () =
  match Frame.of_wire [ true; false; true ] with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ()

let frame_gen =
  QCheck.Gen.(
    let* extended = bool in
    let* id = if extended then 0 -- 0x1FFFFFFF else 0 -- 0x7FF in
    let ident =
      if extended then Identifier.extended id else Identifier.standard id
    in
    let* rtr = bool in
    if rtr then
      let* dlc = 0 -- 8 in
      return (Frame.remote ident ~dlc)
    else
      let* payload = string_size ~gen:(map Char.chr (0 -- 255)) (0 -- 8) in
      return (Frame.data ident payload))

let prop_frame_roundtrip =
  QCheck.Test.make ~name:"frame wire round trip" ~count:500 (QCheck.make frame_gen)
    (fun f ->
      match Frame.of_wire (Frame.to_wire f) with
      | Ok f' -> Frame.equal f f'
      | Error _ -> false)

(* ---------- Error confinement ---------- *)

let test_error_states () =
  let e = Errors.create () in
  Alcotest.(check bool) "starts active" true (Errors.state e = Errors.Error_active);
  for _ = 1 to 16 do
    Errors.on_tx_error e
  done;
  Alcotest.(check bool) "passive at 128" true (Errors.state e = Errors.Error_passive);
  for _ = 1 to 16 do
    Errors.on_tx_error e
  done;
  Alcotest.(check bool) "bus off past 255" true (Errors.state e = Errors.Bus_off);
  Alcotest.(check bool) "cannot transmit" false (Errors.can_transmit e);
  Errors.reset e;
  Alcotest.(check bool) "reset to active" true (Errors.state e = Errors.Error_active)

let test_error_decay () =
  let e = Errors.create () in
  Errors.on_tx_error e;
  check Alcotest.int "tec +8" 8 (Errors.tec e);
  for _ = 1 to 20 do
    Errors.on_tx_success e
  done;
  check Alcotest.int "tec floor 0" 0 (Errors.tec e)

let test_rec_counter () =
  let e = Errors.create () in
  for _ = 1 to 128 do
    Errors.on_rx_error e
  done;
  Alcotest.(check bool) "rx errors alone reach passive" true
    (Errors.state e = Errors.Error_passive);
  for _ = 1 to 10 do
    Errors.on_rx_success e
  done;
  check Alcotest.int "rec decays" 118 (Errors.rec_ e)

(* ---------- Acceptance filters ---------- *)

let test_acceptance () =
  let f = Acceptance.exact (Identifier.standard 0x100) in
  Alcotest.(check bool) "exact hit" true (Acceptance.matches f (Identifier.standard 0x100));
  Alcotest.(check bool) "exact miss" false (Acceptance.matches f (Identifier.standard 0x101));
  Alcotest.(check bool) "format mismatch" false
    (Acceptance.matches f (Identifier.extended 0x100));
  let masked = Acceptance.make ~mask:0x700 ~value:0x100 () in
  Alcotest.(check bool) "mask hit" true (Acceptance.matches masked (Identifier.standard 0x1FF));
  Alcotest.(check bool) "mask miss" false (Acceptance.matches masked (Identifier.standard 0x200));
  Alcotest.(check bool) "empty bank accepts all" true
    (Acceptance.accepts [] (Identifier.standard 0x7FF));
  Alcotest.(check bool) "bank any-of" true
    (Acceptance.accepts [ f; masked ] (Identifier.standard 0x150))

(* ---------- Controller ---------- *)

let test_controller_receive () =
  let c = Controller.create ~name:"c" () in
  let f = Frame.data_std 0x100 "\x01" in
  (match Controller.receive c (Frame.to_wire f) with
  | Controller.Deliver f' -> Alcotest.(check bool) "delivered" true (Frame.equal f f')
  | _ -> Alcotest.fail "expected delivery");
  Controller.set_filters c [ Acceptance.exact (Identifier.standard 0x200) ];
  (match Controller.receive c (Frame.to_wire f) with
  | Controller.Filtered _ -> ()
  | _ -> Alcotest.fail "expected filtering");
  let stats = Controller.stats c in
  check Alcotest.int "delivered count" 1 stats.Controller.rx_delivered;
  check Alcotest.int "filtered count" 1 stats.Controller.rx_filtered

let test_controller_line_error () =
  let c = Controller.create ~name:"c" () in
  (match Controller.receive c [ true; true; true ] with
  | Controller.Line_error _ -> ()
  | _ -> Alcotest.fail "expected line error");
  check Alcotest.int "rec bumped" 1 (Errors.rec_ (Controller.errors c))

(* ---------- Bus + node integration ---------- *)

let make_bus ?corrupt_prob ?(bitrate = 500_000.0) () =
  let sim = Engine.create () in
  (sim, Bus.create ?corrupt_prob ~bitrate sim)

let test_bus_delivery () =
  let sim, bus = make_bus () in
  let a = Node.create ~name:"a" bus in
  let b = Node.create ~name:"b" bus in
  let c = Node.create ~name:"c" bus in
  let f = Frame.data_std 0x123 "\x2A" in
  Alcotest.(check bool) "send accepted" true (Node.send a f);
  Engine.run_until sim 0.01;
  check Alcotest.int "b received" 1 (Node.received_count b);
  check Alcotest.int "c received" 1 (Node.received_count c);
  check Alcotest.int "sender does not self-receive" 0 (Node.received_count a);
  (match Node.last_received b with
  | Some f' -> Alcotest.(check bool) "payload intact" true (Frame.equal f f')
  | None -> Alcotest.fail "nothing received");
  check Alcotest.int "frames sent" 1 (Bus.frames_sent bus)

let test_bus_arbitration_order () =
  let sim, bus = make_bus () in
  let tx = Node.create ~name:"tx" bus in
  let rx = Node.create ~name:"rx" bus in
  (* queue three frames while the bus is busy; they must arrive in priority
     order regardless of submission order *)
  ignore (Node.send tx (Frame.data_std 0x400 ""));
  ignore (Node.send tx (Frame.data_std 0x300 ""));
  ignore (Node.send tx (Frame.data_std 0x100 ""));
  ignore (Node.send tx (Frame.data_std 0x200 ""));
  Engine.run_until sim 0.01;
  let ids =
    List.map (fun (f : Frame.t) -> Identifier.raw f.id) (Node.received rx)
  in
  (* 0x400 goes first (bus idle when submitted), then priority order *)
  Alcotest.(check (list int)) "priority order" [ 0x400; 0x100; 0x200; 0x300 ] ids

let test_bus_timing () =
  let sim, bus = make_bus ~bitrate:125_000.0 () in
  let a = Node.create ~name:"a" bus in
  let received_at = ref 0.0 in
  let b = Node.create ~name:"b" bus in
  Node.set_on_receive b (fun _ ~sender:_ _ -> received_at := Engine.now sim);
  ignore (Node.send a (Frame.data_std 0x100 "\x01\x02\x03\x04"));
  Engine.run_until sim 1.0;
  (* ~75-90 bits at 125kbit/s: several hundred microseconds *)
  Alcotest.(check bool)
    (Printf.sprintf "received at %.6f" !received_at)
    true
    (!received_at > 0.0005 && !received_at < 0.001)

let test_bus_corruption_retransmits () =
  (* corrupt_prob 1.0: every attempt fails; frame is abandoned after retries *)
  let sim, bus = make_bus ~corrupt_prob:1.0 () in
  let a = Node.create ~name:"a" bus in
  let b = Node.create ~name:"b" bus in
  let outcome = ref None in
  ignore
    (Node.send a (Frame.data_std 0x100 "") ~on_outcome:(fun o ->
         outcome := Some o));
  Engine.run_until sim 1.0;
  check Alcotest.int "never delivered" 0 (Node.received_count b);
  (match !outcome with
  | Some Bus.Abandoned -> ()
  | _ -> Alcotest.fail "expected abandonment");
  let stats = Controller.stats (Node.controller a) in
  Alcotest.(check bool) "tx errors counted" true (stats.Controller.tx_errors >= 16);
  Alcotest.(check bool) "receiver saw wire errors" true
    (Errors.rec_ (Controller.errors (Node.controller b)) > 0)

let test_bus_off_node_refuses () =
  let sim, bus = make_bus ~corrupt_prob:1.0 () in
  let a = Node.create ~name:"a" bus in
  let _b = Node.create ~name:"b" bus in
  (* drive the transmitter to bus-off: each attempt +8 TEC, 16 retries per
     send -> two sends exceed 255 *)
  for _ = 1 to 3 do
    ignore (Node.send a (Frame.data_std 0x100 ""));
    Engine.run_until sim (Engine.now sim +. 1.0)
  done;
  Alcotest.(check bool) "bus off" true
    (Errors.state (Controller.errors (Node.controller a)) = Errors.Bus_off);
  Alcotest.(check bool) "send refused" false (Node.send a (Frame.data_std 0x100 ""))

let test_node_gates () =
  let sim, bus = make_bus () in
  let a = Node.create ~name:"a" bus in
  let b = Node.create ~name:"b" bus in
  Node.set_tx_gate a ~name:"wgate" (fun f -> Identifier.raw f.Frame.id <> 0x666);
  Node.set_rx_gate b ~name:"rgate" (fun f -> Identifier.raw f.Frame.id <> 0x100);
  Alcotest.(check bool) "write gate blocks" false
    (Node.send a (Frame.data_std 0x666 ""));
  Alcotest.(check bool) "write gate passes" true
    (Node.send a (Frame.data_std 0x100 ""));
  ignore (Node.send a (Frame.data_std 0x200 ""));
  Engine.run_until sim 0.01;
  let ids =
    List.map (fun (f : Frame.t) -> Identifier.raw f.Frame.id) (Node.received b)
  in
  Alcotest.(check (list int)) "read gate drops 0x100" [ 0x200 ] ids;
  check Alcotest.int "block traced" 1 (List.length (Trace.blocked_at (Bus.trace bus) "b"));
  Node.clear_gates a;
  Alcotest.(check bool) "gate cleared" true (Node.send a (Frame.data_std 0x666 ""))

let test_node_acceptance_filters () =
  let sim, bus = make_bus () in
  let a = Node.create ~name:"a" bus in
  let b =
    Node.create ~filters:[ Acceptance.exact (Identifier.standard 0x100) ] ~name:"b" bus
  in
  ignore (Node.send a (Frame.data_std 0x100 ""));
  ignore (Node.send a (Frame.data_std 0x200 ""));
  Engine.run_until sim 0.01;
  check Alcotest.int "only matching delivered" 1 (Node.received_count b)

let test_bus_duplicate_name () =
  let _, bus = make_bus () in
  let _ = Node.create ~name:"a" bus in
  Alcotest.check_raises "duplicate" (Invalid_argument "Bus.attach: duplicate station \"a\"")
    (fun () -> ignore (Node.create ~name:"a" bus))

let test_detach () =
  let sim, bus = make_bus () in
  let a = Node.create ~name:"a" bus in
  let b = Node.create ~name:"b" bus in
  Node.detach b;
  ignore (Node.send a (Frame.data_std 0x100 ""));
  Engine.run_until sim 0.01;
  check Alcotest.int "detached receives nothing" 0 (Node.received_count b);
  Alcotest.(check (list string)) "stations" [ "a" ] (Bus.stations bus)

let test_bus_utilisation () =
  let sim, bus = make_bus () in
  let a = Node.create ~name:"a" bus in
  let _b = Node.create ~name:"b" bus in
  check Alcotest.(float 0.0) "zero at start" 0.0 (Bus.utilisation bus);
  for _ = 1 to 100 do
    ignore (Node.send a (Frame.data_std 0x100 "\x01\x02\x03\x04"))
  done;
  Engine.run_until sim 0.02;
  Alcotest.(check bool) "busy bus" true (Bus.utilisation bus > 0.5)

let test_trace_contents () =
  let sim, bus = make_bus () in
  let a = Node.create ~name:"a" bus in
  let _b = Node.create ~name:"b" bus in
  ignore (Node.send a (Frame.data_std 0x100 ""));
  Engine.run_until sim 0.01;
  let tr = Bus.trace bus in
  check Alcotest.int "tx-ok entries" 1
    (Trace.count tr (fun e -> e.Trace.event = Trace.Tx_ok));
  check Alcotest.int "delivery entries" 1
    (List.length (Trace.deliveries_to tr "b"));
  (* receive entries are attributed to the sender *)
  (match Trace.deliveries_to tr "b" with
  | [ e ] -> check Alcotest.string "sender attribution" "a" e.Trace.node
  | _ -> Alcotest.fail "expected exactly one delivery")

(* ---------- Gateway ---------- *)

module Gateway = Secpol_can.Gateway

let test_gateway_forwards_whitelisted () =
  let sim = Engine.create () in
  let bus_a = Bus.create ~bitrate:500_000.0 sim in
  let bus_b = Bus.create ~bitrate:500_000.0 sim in
  let sender = Node.create ~name:"sender" bus_a in
  let receiver = Node.create ~name:"receiver" bus_b in
  let allow (f : Frame.t) = Identifier.raw f.id = 0x100 in
  let gw =
    Gateway.connect ~name:"gw" ~a:bus_a ~b:bus_b ~forward_a_to_b:allow
      ~forward_b_to_a:allow ()
  in
  ignore (Node.send sender (Frame.data_std 0x100 "\x01"));
  ignore (Node.send sender (Frame.data_std 0x200 "\x02"));
  Engine.run_until sim 0.01;
  check Alcotest.int "only whitelisted crossed" 1 (Node.received_count receiver);
  check Alcotest.int "forwarded" 1 (Gateway.forwarded gw);
  check Alcotest.int "dropped" 1 (Gateway.dropped gw);
  (match Node.last_received receiver with
  | Some f -> check Alcotest.int "payload intact" 0x100 (Identifier.raw f.Frame.id)
  | None -> Alcotest.fail "nothing crossed")

let test_gateway_bidirectional_no_loop () =
  let sim = Engine.create () in
  let bus_a = Bus.create ~bitrate:500_000.0 sim in
  let bus_b = Bus.create ~bitrate:500_000.0 sim in
  let a = Node.create ~name:"a" bus_a in
  let b = Node.create ~name:"b" bus_b in
  let _gw =
    Gateway.connect ~name:"gw" ~a:bus_a ~b:bus_b
      ~forward_a_to_b:(fun _ -> true)
      ~forward_b_to_a:(fun _ -> true)
      ()
  in
  ignore (Node.send a (Frame.data_std 0x100 ""));
  ignore (Node.send b (Frame.data_std 0x200 ""));
  Engine.run_until sim 0.05;
  (* each side sees exactly the other's frame once: no ping-pong storm *)
  check Alcotest.int "a sees one" 1 (Node.received_count a);
  check Alcotest.int "b sees one" 1 (Node.received_count b)

let test_gateway_validation_and_disconnect () =
  let sim = Engine.create () in
  let bus_a = Bus.create ~bitrate:500_000.0 sim in
  let bus_b = Bus.create ~bitrate:500_000.0 sim in
  (match
     Gateway.connect ~name:"gw" ~a:bus_a ~b:bus_a
       ~forward_a_to_b:(fun _ -> true)
       ~forward_b_to_a:(fun _ -> true)
       ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted a self-bridge");
  let sender = Node.create ~name:"sender" bus_a in
  let receiver = Node.create ~name:"receiver" bus_b in
  let gw =
    Gateway.connect ~name:"gw" ~a:bus_a ~b:bus_b
      ~forward_a_to_b:(fun _ -> true)
      ~forward_b_to_a:(fun _ -> true)
      ()
  in
  Gateway.disconnect gw;
  ignore (Node.send sender (Frame.data_std 0x100 ""));
  Engine.run_until sim 0.01;
  check Alcotest.int "nothing crosses after disconnect" 0
    (Node.received_count receiver)

(* ---------- fault-injection points ---------- *)

let test_detach_drops_queued () =
  let sim, bus = make_bus () in
  let a = Node.create ~name:"a" bus in
  let b = Node.create ~name:"b" bus in
  let abandoned = ref 0 in
  ignore (Node.send a (Frame.data_std 0x100 ""));
  for i = 0 to 2 do
    ignore
      (Node.send b
         ~on_outcome:(fun o -> if o = Bus.Abandoned then incr abandoned)
         (Frame.data_std (0x200 + i) ""))
  done;
  (* a's frame went straight onto the idle wire; b's three are queued *)
  check Alcotest.int "three queued behind the wire" 3 (Bus.pending bus);
  Node.detach b;
  (* b's queued frames leave arbitration with it, accounted as abandoned *)
  check Alcotest.int "queue emptied" 0 (Bus.pending bus);
  check Alcotest.int "owner told" 3 !abandoned;
  check Alcotest.int "bus abandonment counter" 3 (Bus.abandoned bus);
  Engine.run_until sim 0.01;
  check Alcotest.int "a's frame still completes" 1 (Bus.frames_sent bus);
  check Alcotest.int "nothing ghost-delivered" 3
    (Trace.count (Bus.trace bus) (fun e -> e.Trace.event = Trace.Tx_abandoned))

let test_crash_restart_cycle () =
  let sim, bus = make_bus () in
  let a = Node.create ~name:"a" bus in
  let b = Node.create ~name:"b" bus in
  Node.crash b;
  Alcotest.(check bool) "down" true (Node.is_down b);
  Alcotest.(check bool) "off the bus" false (Node.attached b);
  Alcotest.(check bool) "tx refused while down" false
    (Node.send b (Frame.data_std 0x200 ""));
  ignore (Node.send a (Frame.data_std 0x100 ""));
  Engine.run_until sim 0.01;
  check Alcotest.int "rx inert while down" 0 (Node.received_count b);
  Node.restart b;
  Alcotest.(check bool) "back on the bus" true (Node.attached b);
  ignore (Node.send a (Frame.data_std 0x100 ""));
  Engine.run_until sim 0.02;
  check Alcotest.int "receives after restart" 1 (Node.received_count b)

let test_busoff_rejoin_after_recovery () =
  let sim, bus = make_bus () in
  let a = Node.create ~name:"a" bus in
  let b = Node.create ~name:"b" bus in
  let errs = Controller.errors (Node.controller a) in
  for _ = 1 to 32 do
    Errors.on_tx_error errs
  done;
  Alcotest.(check bool) "driven bus-off" true (Errors.state errs = Errors.Bus_off);
  Alcotest.(check bool) "send refused bus-off" false
    (Node.send a (Frame.data_std 0x100 ""));
  (* power-cycle: counters reset, station rejoins, traffic flows again *)
  Node.crash a;
  Node.restart a;
  Alcotest.(check bool) "error-active again" true
    (Errors.state errs = Errors.Error_active);
  Alcotest.(check bool) "send accepted after recovery" true
    (Node.send a (Frame.data_std 0x100 ""));
  Engine.run_until sim 0.01;
  check Alcotest.int "frame delivered after rejoin" 1 (Node.received_count b)

let test_error_confinement_boundaries () =
  (* exact ISO thresholds: passive strictly above 127, bus-off strictly
     above 255 *)
  let e = Errors.create () in
  for _ = 1 to 127 do
    Errors.on_rx_error e
  done;
  Alcotest.(check bool) "rec 127 still active" true
    (Errors.state e = Errors.Error_active);
  Errors.on_rx_error e;
  Alcotest.(check bool) "rec 128 passive" true
    (Errors.state e = Errors.Error_passive);
  Alcotest.(check bool) "passive may still transmit" true (Errors.can_transmit e);
  (* REC decays on successful receptions back under the threshold *)
  for _ = 1 to 128 do
    Errors.on_rx_success e
  done;
  check Alcotest.int "rec decayed to floor" 0 (Errors.rec_ e);
  Alcotest.(check bool) "active after decay" true
    (Errors.state e = Errors.Error_active);
  (* TEC path: +8 per error, passive past 127, bus-off past 255 *)
  for _ = 1 to 16 do
    Errors.on_tx_error e
  done;
  check Alcotest.int "tec 128" 128 (Errors.tec e);
  Alcotest.(check bool) "tec 128 passive" true
    (Errors.state e = Errors.Error_passive);
  for _ = 1 to 15 do
    Errors.on_tx_error e
  done;
  check Alcotest.int "tec 248" 248 (Errors.tec e);
  Alcotest.(check bool) "248 still passive" true
    (Errors.state e = Errors.Error_passive);
  Errors.on_tx_error e;
  Alcotest.(check bool) "256 bus-off" true (Errors.state e = Errors.Bus_off);
  Alcotest.(check bool) "bus-off cannot transmit" false (Errors.can_transmit e);
  (* a bus-off controller accrues no further errors while recovering *)
  Errors.on_tx_error e;
  Errors.on_rx_error e;
  check Alcotest.int "tec frozen bus-off" 256 (Errors.tec e);
  check Alcotest.int "rec frozen bus-off" 0 (Errors.rec_ e);
  Errors.reset e;
  Alcotest.(check bool) "reset recovers" true (Errors.can_transmit e);
  check Alcotest.int "counters cleared" 0 (Errors.tec e)

let test_gateway_sheds_at_capacity () =
  let sim = Engine.create () in
  let bus_a = Bus.create ~bitrate:500_000.0 sim in
  (* destination segment is two orders of magnitude slower, so one forward
     stays in flight while more admissions arrive *)
  let bus_b = Bus.create ~bitrate:5_000.0 sim in
  let sender = Node.create ~name:"sender" bus_a in
  let receiver = Node.create ~name:"receiver" bus_b in
  let gw =
    Gateway.connect ~max_in_flight:1 ~name:"gw" ~a:bus_a ~b:bus_b
      ~forward_a_to_b:(fun _ -> true)
      ~forward_b_to_a:(fun _ -> true)
      ()
  in
  for i = 0 to 2 do
    ignore (Node.send sender (Frame.data_std (0x100 + i) ""))
  done;
  Engine.run_until sim 1.0;
  check Alcotest.int "one carried" 1 (Gateway.forwarded gw);
  check Alcotest.int "excess shed at admission" 2 (Gateway.shed gw);
  check Alcotest.int "receiver saw the survivor" 1
    (Node.received_count receiver);
  check Alcotest.int "no forwards outstanding" 0 (Gateway.in_flight gw)

let test_gateway_retry_backoff_then_shed () =
  let sim = Engine.create () in
  let bus_a = Bus.create ~bitrate:500_000.0 sim in
  let bus_b = Bus.create ~bitrate:500_000.0 sim in
  let sender = Node.create ~name:"sender" bus_a in
  let receiver = Node.create ~name:"receiver" bus_b in
  let gw =
    Gateway.connect ~max_retries:2 ~retry_backoff:0.002 ~name:"gw" ~a:bus_a
      ~b:bus_b
      ~forward_a_to_b:(fun _ -> true)
      ~forward_b_to_a:(fun _ -> true)
      ()
  in
  (* destination segment storms with errors: every submission is abandoned
     by the bus, the gateway backs off and retries, then sheds *)
  Bus.set_corrupt_prob bus_b 1.0;
  ignore (Node.send sender (Frame.data_std 0x100 "\x01"));
  Engine.run_until sim 0.5;
  check Alcotest.int "retry budget spent" 2 (Gateway.retries gw);
  check Alcotest.int "then shed" 1 (Gateway.shed gw);
  check Alcotest.int "nothing crossed" 0 (Node.received_count receiver);
  check Alcotest.int "in-flight drained" 0 (Gateway.in_flight gw);
  (* the destination heals: forwarding resumes without reconnecting *)
  Bus.set_corrupt_prob bus_b 0.0;
  ignore (Node.send sender (Frame.data_std 0x101 "\x02"));
  Engine.run_until sim 1.0;
  check Alcotest.int "forwarding recovered" 1 (Gateway.forwarded gw);
  check Alcotest.int "frame arrived" 1 (Node.received_count receiver)

let test_gateway_deadline_sheds () =
  let sim = Engine.create () in
  let bus_a = Bus.create ~bitrate:500_000.0 sim in
  let bus_b = Bus.create ~bitrate:500_000.0 sim in
  let sender = Node.create ~name:"sender" bus_a in
  let _receiver = Node.create ~name:"receiver" bus_b in
  (* deadline shorter than one bus-level abandonment cycle: no gateway
     retry can be scheduled, the frame is shed on first abandonment *)
  let gw =
    Gateway.connect ~max_retries:5 ~retry_backoff:0.01 ~forward_timeout:0.005
      ~name:"gw" ~a:bus_a ~b:bus_b
      ~forward_a_to_b:(fun _ -> true)
      ~forward_b_to_a:(fun _ -> true)
      ()
  in
  Bus.set_corrupt_prob bus_b 1.0;
  ignore (Node.send sender (Frame.data_std 0x100 ""));
  Engine.run_until sim 0.5;
  check Alcotest.int "no retries past the deadline" 0 (Gateway.retries gw);
  check Alcotest.int "shed once" 1 (Gateway.shed gw)

let test_gateway_retry_exhaustion_sheds_exactly_once () =
  let sim = Engine.create () in
  let bus_a = Bus.create ~bitrate:500_000.0 sim in
  let bus_b = Bus.create ~bitrate:500_000.0 sim in
  let sender = Node.create ~name:"sender" bus_a in
  let receiver = Node.create ~name:"receiver" bus_b in
  (* the deadline sits just past where the retry budget runs out: one
     abandonment cycle is ~1.8 ms, so retry 1 fires at ~3.9 ms and retry 2
     at ~9.6 ms, both inside the 11 ms window, and the second retry's
     abandonment at ~13.4 ms exhausts the budget.  Retry exhaustion and
     deadline expiry nearly coincide — the frame must still be accounted
     shed exactly once, through exactly one path *)
  let gw =
    Gateway.connect ~max_retries:2 ~retry_backoff:0.002 ~forward_timeout:0.011
      ~name:"gw" ~a:bus_a ~b:bus_b
      ~forward_a_to_b:(fun _ -> true)
      ~forward_b_to_a:(fun _ -> true)
      ()
  in
  Bus.set_corrupt_prob bus_b 1.0;
  ignore (Node.send sender (Frame.data_std 0x100 ""));
  Engine.run_until sim 0.5;
  check Alcotest.int "both retries fit the window" 2 (Gateway.retries gw);
  check Alcotest.int "shed exactly once" 1 (Gateway.shed gw);
  check Alcotest.int "nothing crossed" 0 (Node.received_count receiver);
  check Alcotest.int "in-flight drained" 0 (Gateway.in_flight gw)

let test_gateway_backoff_doubling_respects_deadline () =
  let sim = Engine.create () in
  let bus_a = Bus.create ~bitrate:500_000.0 sim in
  let bus_b = Bus.create ~bitrate:500_000.0 sim in
  let sender = Node.create ~name:"sender" bus_a in
  let _receiver = Node.create ~name:"receiver" bus_b in
  (* the first 2 ms backoff fits the 8 ms window (retry at ~3.9 ms), the
     doubled 4 ms backoff from the second abandonment at ~5.6 ms would
     land at ~9.6 ms — past the deadline, so no retry is scheduled and the
     frame is shed with most of the retry budget unspent *)
  let gw =
    Gateway.connect ~max_retries:5 ~retry_backoff:0.002 ~forward_timeout:0.008
      ~name:"gw" ~a:bus_a ~b:bus_b
      ~forward_a_to_b:(fun _ -> true)
      ~forward_b_to_a:(fun _ -> true)
      ()
  in
  Bus.set_corrupt_prob bus_b 1.0;
  ignore (Node.send sender (Frame.data_std 0x100 ""));
  Engine.run_until sim 0.5;
  check Alcotest.int "only the first backoff fit" 1 (Gateway.retries gw);
  check Alcotest.int "then shed" 1 (Gateway.shed gw);
  check Alcotest.int "in-flight drained" 0 (Gateway.in_flight gw)

let test_gateway_per_direction_counters () =
  let sim = Engine.create () in
  let bus_a = Bus.create ~bitrate:500_000.0 sim in
  let bus_b = Bus.create ~bitrate:500_000.0 sim in
  let a = Node.create ~name:"a" bus_a in
  let b = Node.create ~name:"b" bus_b in
  let gw =
    Gateway.connect ~max_retries:1 ~retry_backoff:0.002 ~name:"gw" ~a:bus_a
      ~b:bus_b
      ~forward_a_to_b:(fun f -> Identifier.raw f.Frame.id = 0x100)
      ~forward_b_to_a:(fun f -> Identifier.raw f.Frame.id = 0x200)
      ()
  in
  (* healthy phase: one forward and one drop per direction *)
  ignore (Node.send a (Frame.data_std 0x100 ""));
  ignore (Node.send a (Frame.data_std 0x300 ""));
  ignore (Node.send b (Frame.data_std 0x200 ""));
  ignore (Node.send b (Frame.data_std 0x300 ""));
  Engine.run_until sim 0.1;
  (* one-sided fault: only the a->b destination storms with errors, so
     retries and sheds accrue on a->b while b->a stays clean *)
  Bus.set_corrupt_prob bus_b 1.0;
  ignore (Node.send a (Frame.data_std 0x100 ""));
  Engine.run_until sim 0.5;
  check Alcotest.int "a->b forwarded" 1 (Gateway.forwarded_dir gw `A_to_b);
  check Alcotest.int "b->a forwarded" 1 (Gateway.forwarded_dir gw `B_to_a);
  check Alcotest.int "a->b dropped" 1 (Gateway.dropped_dir gw `A_to_b);
  check Alcotest.int "b->a dropped" 1 (Gateway.dropped_dir gw `B_to_a);
  check Alcotest.int "a->b retried" 1 (Gateway.retries_dir gw `A_to_b);
  check Alcotest.int "b->a never retried" 0 (Gateway.retries_dir gw `B_to_a);
  check Alcotest.int "a->b shed" 1 (Gateway.shed_dir gw `A_to_b);
  check Alcotest.int "b->a never shed" 0 (Gateway.shed_dir gw `B_to_a);
  (* the aggregates are exactly the direction sums *)
  check Alcotest.int "forwarded sum" 2 (Gateway.forwarded gw);
  check Alcotest.int "dropped sum" 2 (Gateway.dropped gw);
  check Alcotest.int "retries sum" 1 (Gateway.retries gw);
  check Alcotest.int "shed sum" 1 (Gateway.shed gw)

let test_bus_corrupt_prob_setter () =
  let _, bus = make_bus ~corrupt_prob:0.25 () in
  check Alcotest.(float 0.0) "reads back" 0.25 (Bus.corrupt_prob bus);
  Bus.set_corrupt_prob bus 0.75;
  check Alcotest.(float 0.0) "updated" 0.75 (Bus.corrupt_prob bus);
  Alcotest.check_raises "rejects out of range"
    (Invalid_argument "Bus.set_corrupt_prob: probability outside [0,1]")
    (fun () -> Bus.set_corrupt_prob bus 1.5)

(* ---------- candump format ---------- *)

module Candump = Secpol_can.Candump

let test_candump_line_format () =
  let f = Frame.data_std 0x123 "\x2A\x36\x6C" in
  check Alcotest.string "data line" "(1436509052.249713) can0 123#2A366C"
    (Candump.line_of ~time:1436509052.249713 f);
  let r = Frame.remote (Identifier.standard 0x44) ~dlc:3 in
  check Alcotest.string "remote line" "(0.000000) vcan0 044#R3"
    (Candump.line_of ~interface:"vcan0" ~time:0.0 r);
  let e = Frame.data_ext 0x12345678 "" in
  check Alcotest.string "extended line" "(1.500000) can0 12345678#"
    (Candump.line_of ~time:1.5 e)

let test_candump_parse () =
  (match Candump.parse_line "(1436509052.249713) can0 123#2A366C" with
  | Ok r ->
      check Alcotest.(float 1e-6) "time" 1436509052.249713 r.Candump.time;
      check Alcotest.string "interface" "can0" r.Candump.interface;
      Alcotest.(check bool) "frame" true
        (Frame.equal r.Candump.frame (Frame.data_std 0x123 "\x2A\x36\x6C"))
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Candump.parse_line bad with
      | Ok _ -> Alcotest.fail ("accepted " ^ bad)
      | Error _ -> ())
    [
      "no timestamp can0 123#00";
      "(1.0) can0 123";
      "(1.0) can0 123#2A3";
      "(1.0) can0 123#R9";
      "(x) can0 123#00";
      "(1.0) can0 999999999#00";
      "(1.0) can0 123#001122334455667788";
    ]

let test_candump_parse_strict_digits () =
  (* int_of_string's literal extras (underscores, base prefixes, signs)
     are not valid candump and must not slip through *)
  List.iter
    (fun bad ->
      match Candump.parse_line bad with
      | Ok _ -> Alcotest.fail ("accepted " ^ bad)
      | Error _ -> ())
    [
      "(1.0) can0 1_2#DE";
      "(1.0) can0 0x12#DE";
      "(1.0) can0 +12#DE";
      "(1.0) can0 #DE";
      "(1.0) can0 123456789#DE";
      "(1.0) can0 12#R0_8";
      "(1.0) can0 12#R0x2";
      "(1.0) can0 12#R-1";
      "(1.0) can0 12#R12345";
    ];
  (* the strict parsers still take the full legitimate range *)
  (match Candump.parse_line "(1.0) can0 1FFFFFFF#DE" with
  | Ok r ->
      Alcotest.(check bool) "max extended id" true
        (Frame.equal r.Candump.frame (Frame.data_ext 0x1FFFFFFF "\xDE"))
  | Error e -> Alcotest.fail e);
  match Candump.parse_line "(1.0) can0 12#R8" with
  | Ok r ->
      Alcotest.(check bool) "remote dlc 8" true
        (Frame.equal r.Candump.frame (Frame.remote (Identifier.standard 0x12) ~dlc:8))
  | Error e -> Alcotest.fail e

let prop_candump_roundtrip =
  QCheck.Test.make ~name:"candump line round trip" ~count:300
    QCheck.(make Gen.(pair frame_gen (float_bound_inclusive 1e6)))
    (fun (frame, time) ->
      match Candump.parse_line (Candump.line_of ~time frame) with
      | Ok r ->
          Frame.equal r.Candump.frame frame
          && Float.abs (r.Candump.time -. time) < 1e-5
      | Error _ -> false)

let test_candump_export_import_replay () =
  (* record traffic on one bus, replay it onto a fresh one *)
  let sim, bus = make_bus () in
  let a = Node.create ~name:"a" bus in
  let _b = Node.create ~name:"b" bus in
  ignore (Node.send a (Frame.data_std 0x100 "\x01"));
  ignore (Node.send a (Frame.data_std 0x200 "\x02\x03"));
  Engine.run_until sim 0.01;
  let log = Candump.export (Bus.trace bus) in
  check Alcotest.int "two lines" 2
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' log)));
  match Candump.import log with
  | Error e -> Alcotest.fail e
  | Ok records ->
      check Alcotest.int "two records" 2 (List.length records);
      let sim2, bus2 = make_bus () in
      let _atk = Node.create ~name:"replayer" bus2 in
      let victim = Node.create ~name:"victim" bus2 in
      Candump.replay sim2 bus2 ~sender:"replayer" records;
      Engine.run_until sim2 1.0;
      check Alcotest.int "replayed onto the new bus" 2
        (Node.received_count victim)

let () =
  Alcotest.run "secpol_can"
    [
      ( "binheap",
        [
          quick "basics" test_binheap_basics;
          quick "drain_if" test_binheap_drain_if;
          QCheck_alcotest.to_alcotest prop_binheap_sorted;
        ] );
      ( "identifier",
        [
          quick "ranges" test_id_ranges;
          quick "arbitration" test_id_arbitration;
          quick "base id" test_id_base;
        ] );
      ( "crc",
        [
          quick "stable" test_crc_stable;
          quick "detects flips" test_crc_detects_flip;
          quick "to_bits" test_crc_to_bits;
        ] );
      ( "bitstuff",
        [
          quick "five bits stuffed" test_stuff_simple;
          quick "run restart" test_stuff_restarts_run;
          quick "violation" test_unstuff_violation;
          QCheck_alcotest.to_alcotest prop_stuff_roundtrip;
          QCheck_alcotest.to_alcotest prop_stuffed_never_six;
          QCheck_alcotest.to_alcotest prop_stuffed_length;
        ] );
      ( "frame",
        [
          quick "construction" test_frame_construction;
          quick "remote" test_remote_frame;
          quick "wire round trip" test_frame_wire_roundtrip_basic;
          quick "wire length" test_frame_wire_length;
          quick "transmission time" test_frame_transmission_time;
          quick "corruption detected" test_frame_corrupt_detected;
          quick "truncated" test_frame_truncated;
          QCheck_alcotest.to_alcotest prop_frame_roundtrip;
        ] );
      ( "errors",
        [
          quick "state machine" test_error_states;
          quick "decay" test_error_decay;
          quick "receive counter" test_rec_counter;
        ] );
      ("acceptance", [ quick "filters" test_acceptance ]);
      ( "controller",
        [
          quick "receive path" test_controller_receive;
          quick "line errors" test_controller_line_error;
        ] );
      ( "bus",
        [
          quick "broadcast delivery" test_bus_delivery;
          quick "arbitration order" test_bus_arbitration_order;
          quick "timing" test_bus_timing;
          quick "corruption + retransmission" test_bus_corruption_retransmits;
          quick "bus-off refusal" test_bus_off_node_refuses;
          quick "gates" test_node_gates;
          quick "acceptance filters" test_node_acceptance_filters;
          quick "duplicate names" test_bus_duplicate_name;
          quick "detach" test_detach;
          quick "utilisation" test_bus_utilisation;
          quick "trace" test_trace_contents;
        ] );
      ( "gateway",
        [
          quick "whitelist forwarding" test_gateway_forwards_whitelisted;
          quick "bidirectional, no loops" test_gateway_bidirectional_no_loop;
          quick "validation + disconnect" test_gateway_validation_and_disconnect;
          quick "sheds at in-flight bound" test_gateway_sheds_at_capacity;
          quick "retry backoff then shed" test_gateway_retry_backoff_then_shed;
          quick "deadline sheds" test_gateway_deadline_sheds;
          quick "retry exhaustion sheds exactly once"
            test_gateway_retry_exhaustion_sheds_exactly_once;
          quick "backoff doubling respects deadline"
            test_gateway_backoff_doubling_respects_deadline;
          quick "per-direction counters" test_gateway_per_direction_counters;
        ] );
      ( "fault-points",
        [
          quick "detach drops queued frames" test_detach_drops_queued;
          quick "crash/restart cycle" test_crash_restart_cycle;
          quick "bus-off rejoin after recovery" test_busoff_rejoin_after_recovery;
          quick "confinement boundaries" test_error_confinement_boundaries;
          quick "corrupt_prob setter" test_bus_corrupt_prob_setter;
        ] );
      ( "candump",
        [
          quick "line format" test_candump_line_format;
          quick "parsing" test_candump_parse;
          quick "strict digit parsing" test_candump_parse_strict_digits;
          quick "export/import/replay" test_candump_export_import_replay;
          QCheck_alcotest.to_alcotest prop_candump_roundtrip;
        ] );
    ]
