(* Failure injection and determinism: the simulator under line noise, and
   reproducibility guarantees the whole evaluation relies on. *)

module V = Secpol_vehicle
module Car = V.Car
module State = V.State
module Names = V.Names
module Messages = V.Messages
module Scenarios = Secpol_attack.Scenarios
module Catalog = V.Threat_catalog
module Node = Secpol_can.Node
module Controller = Secpol_can.Controller
module Errors = Secpol_can.Errors
module Trace = Secpol_can.Trace

let check = Alcotest.check

let quick name f = Alcotest.test_case name `Quick f

let slow name f = Alcotest.test_case name `Slow f

(* ---------- Determinism ---------- *)

let state_fingerprint (s : State.t) =
  Format.asprintf "%a|%d|%d" State.pp s s.software_installs s.emergency_calls

let trace_fingerprint car =
  List.map
    (fun (e : Trace.entry) ->
      Format.asprintf "%.9f %s %a %s" e.time e.node Secpol_can.Frame.pp e.frame
        (Trace.event_name e.event))
    (Trace.entries (Car.trace car))

let test_same_seed_same_run () =
  let run () =
    let car = Car.create ~seed:7L ~corrupt_prob:0.01 () in
    Car.run car ~seconds:2.0;
    (state_fingerprint car.Car.state, trace_fingerprint car)
  in
  let s1, t1 = run () in
  let s2, t2 = run () in
  check Alcotest.string "same state" s1 s2;
  check Alcotest.int "same trace length" (List.length t1) (List.length t2);
  List.iter2 (fun a b -> check Alcotest.string "same trace entry" a b) t1 t2

let test_different_seed_different_noise () =
  let errors seed =
    let car = Car.create ~seed ~corrupt_prob:0.05 () in
    Car.run car ~seconds:2.0;
    Trace.count (Car.trace car) (fun e -> e.Trace.event = Trace.Tx_error)
  in
  (* same noise rate, different draws *)
  Alcotest.(check bool) "noise actually drawn" true (errors 1L > 0);
  Alcotest.(check bool) "seeds shape the run" true (errors 1L <> errors 99L)

(* ---------- Line noise ---------- *)

let test_noisy_bus_function_retained () =
  let car = Car.create ~corrupt_prob:0.02 () in
  Car.run car ~seconds:3.0;
  let s = car.Car.state in
  Alcotest.(check bool) "ecu healthy" true s.State.ev_ecu_enabled;
  Alcotest.(check bool) "engine running" true s.State.engine_running;
  (* retransmissions happened... *)
  Alcotest.(check bool) "errors observed" true
    (Trace.count (Car.trace car) (fun e -> e.Trace.event = Trace.Tx_error) > 0);
  (* ...and nobody fell off the bus at this noise level *)
  List.iter
    (fun name ->
      let errs = Controller.errors (Node.controller (Car.node car name)) in
      Alcotest.(check bool) (name ^ " not bus-off") true
        (Errors.state errs <> Errors.Bus_off))
    Names.nodes

let test_noisy_bus_crash_chain_still_works () =
  let car = Car.create ~corrupt_prob:0.02 () in
  Car.run car ~seconds:0.5;
  V.Safety.trigger_crash (Car.node car Names.safety) car.Car.state;
  Car.run car ~seconds:1.0;
  Alcotest.(check bool) "failsafe latched" true car.Car.state.State.failsafe_latched;
  Alcotest.(check bool) "doors unlocked" false car.Car.state.State.doors_locked;
  check Alcotest.int "emergency call placed" 1 car.Car.state.State.emergency_calls

let test_hpe_enforcement_under_noise () =
  (* the headline spoofing attack on a noisy bus: retransmission gets the
     forged frame through eventually without enforcement, while the HPE
     blocks it at the source regardless of line conditions *)
  let attack enforcement =
    let car = Car.create ~corrupt_prob:0.05 ~enforcement () in
    Car.run car ~seconds:0.3;
    let node = Car.node car Names.infotainment in
    Controller.set_filters (Node.controller node) [];
    for _ = 1 to 20 do
      ignore
        (Node.send node
           (Secpol_can.Frame.data_std Messages.ecu_command
              (String.make 1 Messages.cmd_disable)))
    done;
    Car.run car ~seconds:1.0;
    car.Car.state.State.ev_ecu_enabled
  in
  Alcotest.(check bool) "lands through the noise unprotected" false
    (attack Car.Software_filters);
  Alcotest.(check bool) "still blocked by the HPE" true
    (attack (Car.Hpe (V.Policy_map.baseline ())))

let test_extreme_noise_starves_the_bus () =
  let car = Car.create ~corrupt_prob:0.9 () in
  Car.run car ~seconds:1.0;
  (* almost nothing gets through; retry budgets exhaust *)
  Alcotest.(check bool) "abandonments" true
    (Trace.count (Car.trace car) (fun e -> e.Trace.event = Trace.Tx_abandoned) > 0)

(* ---------- Stress ---------- *)

let test_priority_storm_ordering () =
  (* 500 frames of random priority queued at once drain in priority order *)
  let sim = Secpol_sim.Engine.create () in
  let bus = Secpol_can.Bus.create ~bitrate:1_000_000.0 sim in
  let tx = Node.create ~name:"tx" bus in
  let rx = Node.create ~name:"rx" bus in
  let rng = Secpol_sim.Rng.create 3L in
  (* distinct ids so the expected order is unambiguous *)
  let ids = Array.init 500 (fun i -> i) in
  Secpol_sim.Rng.shuffle rng ids;
  Array.iter
    (fun id -> ignore (Node.send tx (Secpol_can.Frame.data_std id "")))
    ids;
  Secpol_sim.Engine.run_until sim 10.0;
  let received =
    List.map
      (fun (f : Secpol_can.Frame.t) -> Secpol_can.Identifier.raw f.id)
      (Node.received rx)
  in
  check Alcotest.int "all delivered" 500 (List.length received);
  (* after the first frame (whatever won while the bus was idle), the rest
     drain lowest-id-first among what was pending: the tail is sorted *)
  match received with
  | _first :: rest ->
      Alcotest.(check bool) "priority order" true
        (List.sort compare rest = rest)
  | [] -> Alcotest.fail "nothing delivered"

let test_long_run_stability () =
  let car = Car.create () in
  Car.run car ~seconds:60.0;
  Alcotest.(check bool) "still healthy after a minute" true
    car.Car.state.State.ev_ecu_enabled;
  Alcotest.(check bool) "thousands of frames" true
    (Secpol_can.Bus.frames_sent car.Car.bus > 8_000)

(* ---------- fault plans, watchdog, chaos campaigns ---------- *)

module F = Secpol_faults
module Json = Secpol_policy.Json
module Engine = Secpol_sim.Engine

let test_watchdog_trips_and_rearms () =
  let sim = Engine.create () in
  let clock = F.Clock.create sim in
  let healthy = ref true in
  let expired = ref 0 in
  let wd =
    F.Watchdog.create ~period:0.01 ~deadline:0.05 ~clock
      ~ping:(fun () -> !healthy)
      ~on_expire:(fun () -> incr expired)
      sim
  in
  Engine.run_until sim 0.2;
  check Alcotest.int "no trip while healthy" 0 (F.Watchdog.trips wd);
  Engine.schedule sim ~at:0.3 (fun _ -> healthy := false);
  Engine.schedule sim ~at:0.5 (fun _ -> healthy := true);
  Engine.run_until sim 1.0;
  check Alcotest.int "tripped once" 1 (F.Watchdog.trips wd);
  check Alcotest.int "on_expire fired once" 1 !expired;
  Alcotest.(check bool) "re-armed after recovery" false (F.Watchdog.tripped wd);
  (match F.Watchdog.detections wd with
  | [ (at, mttd) ] ->
      (* failing from 0.30: first failed ping 0.31, trip at deadline past
         the last healthy ping (0.30): 0.35; detection latency ~40 ms *)
      Alcotest.(check bool) "trip time in window" true (at > 0.3 && at <= 0.36);
      Alcotest.(check bool) "mttd positive and bounded" true
        (mttd > 0.0 && mttd <= 0.06)
  | l -> Alcotest.fail (Printf.sprintf "%d detections" (List.length l)));
  (* a second outage trips again *)
  Engine.schedule sim ~at:1.2 (fun _ -> healthy := false);
  Engine.run_until sim 2.0;
  check Alcotest.int "second trip" 2 (F.Watchdog.trips wd)

let test_clock_skew_continuity () =
  let sim = Engine.create () in
  let clock = F.Clock.create sim in
  Engine.schedule sim ~at:1.0 (fun _ -> F.Clock.set_factor clock 0.5);
  Engine.run_until sim 1.0;
  check Alcotest.(float 1e-9) "synchronised before skew" 1.0 (F.Clock.now clock);
  Engine.run_until sim 3.0;
  (* 1 s at rate 1, then 2 s at rate 0.5 *)
  check Alcotest.(float 1e-9) "half rate after" 2.0 (F.Clock.now clock);
  Alcotest.check_raises "rejects non-positive factor"
    (Invalid_argument "Clock.set_factor: factor must be positive") (fun () ->
      F.Clock.set_factor clock 0.0)

let test_plan_generation_deterministic () =
  let p1 = F.Plan.generate ~seed:5L ~horizon:4.0 () in
  let p2 = F.Plan.generate ~seed:5L ~horizon:4.0 () in
  let p3 = F.Plan.generate ~seed:6L ~horizon:4.0 () in
  let fingerprint p =
    List.map
      (fun (e : F.Plan.entry) ->
        Printf.sprintf "%.6f %s" e.F.Plan.at (F.Fault.label e.F.Plan.kind))
      p.F.Plan.entries
  in
  Alcotest.(check (list string)) "same seed, same plan" (fingerprint p1)
    (fingerprint p2);
  Alcotest.(check bool) "different seed, different plan" true
    (fingerprint p1 <> fingerprint p3);
  (match F.Plan.validate p1 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "generated plans recover" false (F.Plan.degrading p1);
  List.iter
    (fun name ->
      match F.Plan.of_name name with
      | Some p -> (
          match F.Plan.validate p with
          | Ok () -> ()
          | Error e -> Alcotest.fail (name ^ ": " ^ e))
      | None -> Alcotest.fail ("unknown named plan " ^ name))
    F.Plan.named;
  match
    F.Plan.validate
      {
        F.Plan.name = "bad";
        horizon = 1.0;
        entries =
          [ { F.Plan.at = 2.0; kind = F.Fault.Policy_stall { down_for = 0.1 } } ];
      }
  with
  | Ok () -> Alcotest.fail "accepted an entry past the horizon"
  | Error _ -> ()

(* The acceptance experiment: kill the policy engine mid-run; the watchdog
   must drive the car into fail-safe within the configured deadline, no
   unapproved frame may ever be granted, and the whole thing must hold
   across distinct seeds. *)
let chaos_stall_enters_failsafe seed () =
  let plan = Option.get (F.Plan.of_name ~horizon:2.0 "stall") in
  let o = F.Chaos.run ~seed ~plan () in
  List.iter
    (fun (v : F.Invariant.violation) ->
      Printf.printf "violation: %s %s\n" v.F.Invariant.check v.F.Invariant.detail)
    (F.Invariant.violations o.F.Chaos.checker);
  Alcotest.(check bool) "all invariants held" true o.F.Chaos.passed;
  let h = o.F.Chaos.harness in
  let stall_at =
    match F.Harness.stall_started h with
    | Some s -> s
    | None -> Alcotest.fail "stall never injected"
  in
  let entered =
    match F.Harness.failsafe_entered h with
    | Some e -> e
    | None -> Alcotest.fail "never entered fail-safe"
  in
  let bound = F.Harness.failsafe_bound h ~stall_at in
  Alcotest.(check bool) "after the stall" true (entered >= stall_at);
  Alcotest.(check bool) "within the degradation deadline" true
    (entered <= bound);
  let car = F.Harness.car h in
  Alcotest.(check bool) "latched in fail-safe" true
    (Car.mode car = V.Modes.Fail_safe && car.Car.state.State.failsafe_latched);
  check Alcotest.int "watchdog detected exactly one outage" 1
    (F.Watchdog.trips (F.Harness.watchdog h));
  (* report says the same thing, machine-readably *)
  let r = o.F.Chaos.report in
  Alcotest.(check (option string)) "verdict" (Some "pass")
    (Option.bind (Json.member "verdict" r) Json.to_str);
  let latency =
    Option.bind (Json.member "failsafe" r) (fun fs ->
        Json.member "latency_ms" fs)
  in
  (match latency with
  | Some (Json.Float ms) -> Alcotest.(check bool) "latency > 0" true (ms > 0.0)
  | _ -> Alcotest.fail "no fail-safe latency in report");
  match Option.bind (Json.member "mttd_ms" r) (Json.member "count") with
  | Some (Json.Int n) -> Alcotest.(check bool) "MTTD recorded" true (n >= 1)
  | _ -> Alcotest.fail "no MTTD histogram in report"

(* Recovery SLO: every fault in a recoverable plan clears, MTTR lands in
   the report, and the end state equals a never-faulted run's. *)
let chaos_recoverable_converges plan_name seed () =
  let plan = Option.get (F.Plan.of_name ~seed ~horizon:3.0 plan_name) in
  let o = F.Chaos.run ~seed ~plan () in
  List.iter
    (fun (v : F.Invariant.violation) ->
      Printf.printf "violation: %s %s\n" v.F.Invariant.check v.F.Invariant.detail)
    (F.Invariant.violations o.F.Chaos.checker);
  Alcotest.(check bool) "all invariants held" true o.F.Chaos.passed;
  let car = F.Harness.car o.F.Chaos.harness in
  Alcotest.(check bool) "still in normal mode" true
    (Car.mode car = V.Modes.Normal);
  List.iter
    (fun (r : F.Harness.record) ->
      Alcotest.(check bool)
        (F.Fault.label r.F.Harness.entry.F.Plan.kind ^ " injected")
        true
        (r.F.Harness.injected_at <> None);
      Alcotest.(check bool)
        (F.Fault.label r.F.Harness.entry.F.Plan.kind ^ " recovered")
        true
        (r.F.Harness.cleared_at <> None))
    (F.Harness.records o.F.Chaos.harness);
  let r = o.F.Chaos.report in
  match Option.bind (Json.member "mttr_ms" r) (Json.member "count") with
  | Some (Json.Int n) ->
      check Alcotest.int "every fault has an MTTR sample"
        (List.length plan.F.Plan.entries)
        n
  | _ -> Alcotest.fail "no MTTR histogram in report"

let test_chaos_skewed_stall_still_bounded () =
  let plan = Option.get (F.Plan.of_name ~horizon:2.0 "skewed-stall") in
  let o = F.Chaos.run ~seed:31L ~plan () in
  Alcotest.(check bool) "all invariants held" true o.F.Chaos.passed;
  let h = o.F.Chaos.harness in
  check Alcotest.(float 1e-9) "skew recorded" 0.5 (F.Harness.min_clock_factor h);
  let stall_at = Option.get (F.Harness.stall_started h) in
  let entered = Option.get (F.Harness.failsafe_entered h) in
  (* the slow clock stretches detection beyond the unskewed worst case but
     stays inside the skew-adjusted bound *)
  Alcotest.(check bool) "slower than unskewed worst case" true
    (entered -. stall_at > 0.06);
  Alcotest.(check bool) "inside the skew-adjusted bound" true
    (entered <= F.Harness.failsafe_bound h ~stall_at)

let test_segment_plans_need_topology_car () =
  List.iter
    (fun name ->
      match F.Plan.of_name ~horizon:2.0 name with
      | None -> Alcotest.fail (name ^ " is not a named plan")
      | Some plan -> (
          Alcotest.(check bool)
            (name ^ " segment-scoped") true
            (F.Plan.segment_scoped plan);
          (* the flat-bus harness has no segments or gateways to fault:
             it must refuse and point at the topology runner *)
          match F.Harness.create ~seed:7L ~plan () with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail (name ^ " accepted by the flat harness")))
    [ "segment-partition"; "segment-babble"; "gateway-failover" ]

let test_invariant_catches_unapproved_delivery () =
  (* the safety net must not be vacuous: hand the checker a fabricated
     unapproved delivery and it has to object *)
  let plan = { F.Plan.name = "quiet"; horizon = 1.0; entries = [] } in
  let h = F.Harness.create ~seed:3L ~plan () in
  let checker = F.Invariant.create h in
  F.Harness.run_until h 0.5;
  F.Invariant.check checker;
  Alcotest.(check bool) "clean so far" true (F.Invariant.ok checker);
  let car = F.Harness.car h in
  Secpol_can.Trace.record (Car.trace car)
    ~time:(Engine.now car.Car.sim)
    ~node:"intruder"
    (Secpol_can.Frame.data_std 0x7DF "")
    (Trace.Rx_delivered Names.ev_ecu);
  F.Invariant.check checker;
  match F.Invariant.violations checker with
  | [ v ] ->
      check Alcotest.string "right check fired" "approved_rx"
        v.F.Invariant.check
  | l -> Alcotest.fail (Printf.sprintf "%d violations" (List.length l))

let test_chaos_deterministic () =
  let run () =
    let plan = Option.get (F.Plan.of_name ~seed:17L ~horizon:2.0 "mixed") in
    let o = F.Chaos.run ~seed:17L ~plan () in
    (* the telemetry snapshot embeds wall-clock decision latencies; all
       simulation-time results must be bit-identical across runs *)
    match o.F.Chaos.report with
    | Json.Obj fields ->
        F.Report.to_string
          (Json.Obj (List.filter (fun (k, _) -> k <> "telemetry") fields))
    | j -> F.Report.to_string j
  in
  check Alcotest.string "same (seed, plan), same report" (run ()) (run ())

let () =
  Alcotest.run "secpol_faults"
    [
      ( "determinism",
        [
          quick "same seed, same run" test_same_seed_same_run;
          quick "different seeds differ" test_different_seed_different_noise;
        ] );
      ( "noise",
        [
          slow "function retained" test_noisy_bus_function_retained;
          slow "crash chain under noise" test_noisy_bus_crash_chain_still_works;
          slow "enforcement under noise" test_hpe_enforcement_under_noise;
          quick "extreme noise" test_extreme_noise_starves_the_bus;
        ] );
      ( "stress",
        [
          quick "priority storm" test_priority_storm_ordering;
          slow "long run" test_long_run_stability;
        ] );
      ( "watchdog",
        [
          quick "trips and re-arms" test_watchdog_trips_and_rearms;
          quick "skewable clock" test_clock_skew_continuity;
        ] );
      ( "plans",
        [
          quick "seeded generation" test_plan_generation_deterministic;
          quick "segment plans need a topology car"
            test_segment_plans_need_topology_car;
          quick "checker not vacuous" test_invariant_catches_unapproved_delivery;
        ] );
      ( "chaos",
        [
          slow "stall -> fail-safe (seed 11)" (chaos_stall_enters_failsafe 11L);
          slow "stall -> fail-safe (seed 23)" (chaos_stall_enters_failsafe 23L);
          slow "skewed stall bounded" test_chaos_skewed_stall_still_bounded;
          slow "crash recovers (seed 11)"
            (chaos_recoverable_converges "crash" 11L);
          slow "crash recovers (seed 23)"
            (chaos_recoverable_converges "crash" 23L);
          slow "storm recovers" (chaos_recoverable_converges "storm" 7L);
          slow "partition recovers" (chaos_recoverable_converges "partition" 7L);
          slow "hpe corruption recovers"
            (chaos_recoverable_converges "hpe-corruption" 7L);
          slow "mixed recovers (seed 41)"
            (chaos_recoverable_converges "mixed" 41L);
          slow "deterministic campaigns" test_chaos_deterministic;
        ] );
    ]
