(* Tests for the hardware policy engine: approved lists, decision block,
   register file, policy compilation and node integration. *)

module Approved_list = Secpol_hpe.Approved_list
module Decision = Secpol_hpe.Decision
module Registers = Secpol_hpe.Registers
module Config = Secpol_hpe.Config
module Hpe = Secpol_hpe.Engine
module Identifier = Secpol_can.Identifier
module Frame = Secpol_can.Frame
module Bus = Secpol_can.Bus
module Node = Secpol_can.Node
module Engine = Secpol_sim.Engine
module Compile = Secpol_policy.Compile
module PEngine = Secpol_policy.Engine

let check = Alcotest.check

let quick name f = Alcotest.test_case name `Quick f

(* ---------- Approved lists ---------- *)

let test_list_basic backend () =
  let l = Approved_list.create ~backend () in
  check Alcotest.int "empty" 0 (Approved_list.cardinal l);
  Approved_list.add l (Identifier.standard 0x100);
  Approved_list.add l (Identifier.standard 0x100);
  Approved_list.add l (Identifier.extended 0x12345);
  check Alcotest.int "dedup add" 2 (Approved_list.cardinal l);
  Alcotest.(check bool) "mem std" true
    (Approved_list.mem l (Identifier.standard 0x100));
  Alcotest.(check bool) "mem ext" true
    (Approved_list.mem l (Identifier.extended 0x12345));
  Alcotest.(check bool) "format distinct" false
    (Approved_list.mem l (Identifier.extended 0x100));
  Approved_list.remove l (Identifier.standard 0x100);
  Alcotest.(check bool) "removed" false
    (Approved_list.mem l (Identifier.standard 0x100));
  check Alcotest.int "cardinal after remove" 1 (Approved_list.cardinal l);
  Approved_list.clear l;
  check Alcotest.int "cleared" 0 (Approved_list.cardinal l)

let test_list_range () =
  let l = Approved_list.create () in
  Approved_list.add_range l ~lo:0x100 ~hi:0x10F;
  check Alcotest.int "sixteen" 16 (Approved_list.cardinal l);
  Alcotest.(check bool) "in range" true (Approved_list.mem l (Identifier.standard 0x108));
  Alcotest.check_raises "bad range"
    (Invalid_argument "Approved_list.add_range: bad 11-bit range") (fun () ->
      Approved_list.add_range l ~lo:5 ~hi:2)

let test_list_to_ids_sorted () =
  let l =
    Approved_list.of_ids
      [
        Identifier.standard 0x300;
        Identifier.extended 0x2;
        Identifier.standard 0x100;
        Identifier.extended 0x1;
      ]
  in
  let ids = Approved_list.to_ids l in
  Alcotest.(check (list int)) "sorted std then ext"
    [ 0x100; 0x300; 0x1; 0x2 ]
    (List.map Identifier.raw ids)

let id_gen =
  QCheck.Gen.(
    let* ext = bool in
    let* raw = if ext then 0 -- 0x1FFFFFFF else 0 -- 0x7FF in
    return (if ext then Identifier.extended raw else Identifier.standard raw))

let prop_backends_agree =
  QCheck.Test.make ~name:"bitset, hashtable and intervals backends agree"
    ~count:200
    QCheck.(make Gen.(pair (list_size (0 -- 50) id_gen) (list_size (0 -- 20) id_gen)))
    (fun (adds, queries) ->
      let bits = Approved_list.of_ids ~backend:Approved_list.Bitset adds in
      let tbl = Approved_list.of_ids ~backend:Approved_list.Hashtable adds in
      let rng = Approved_list.of_ids ~backend:Approved_list.Intervals adds in
      Approved_list.cardinal bits = Approved_list.cardinal tbl
      && Approved_list.cardinal bits = Approved_list.cardinal rng
      && List.for_all
           (fun q ->
             Approved_list.mem bits q = Approved_list.mem tbl q
             && Approved_list.mem bits q = Approved_list.mem rng q)
           (adds @ queries))

let test_intervals_bulk_range () =
  (* the intervals backend takes add_range as one merge, not 4096 inserts *)
  let l = Approved_list.create ~backend:Approved_list.Intervals () in
  Approved_list.add_range l ~lo:0x000 ~hi:0x5FF;
  Approved_list.add_range l ~lo:0x600 ~hi:0x7FF;
  check Alcotest.int "full 11-bit space" 0x800 (Approved_list.cardinal l);
  Alcotest.(check bool) "mem" true (Approved_list.mem l (Identifier.standard 0x5FF));
  (* overlapping re-approval adds only the new IDs *)
  Approved_list.add_range l ~lo:0x100 ~hi:0x1FF;
  check Alcotest.int "idempotent overlap" 0x800 (Approved_list.cardinal l);
  Approved_list.remove l (Identifier.standard 0x400);
  check Alcotest.int "range split on remove" 0x7FF (Approved_list.cardinal l);
  Alcotest.(check bool) "hole" false (Approved_list.mem l (Identifier.standard 0x400));
  Alcotest.(check bool) "neighbours intact" true
    (Approved_list.mem l (Identifier.standard 0x3FF)
    && Approved_list.mem l (Identifier.standard 0x401))

let test_intervals_to_ids () =
  let l = Approved_list.create ~backend:Approved_list.Intervals () in
  Approved_list.add_range l ~lo:0x101 ~hi:0x103;
  Approved_list.add l (Identifier.extended 0x2);
  Approved_list.add l (Identifier.extended 0x1);
  Alcotest.(check (list int)) "expanded, std then ext"
    [ 0x101; 0x102; 0x103; 0x1; 0x2 ]
    (List.map Identifier.raw (Approved_list.to_ids l))

(* ---------- Decision block ---------- *)

let test_decision_block () =
  let l = Approved_list.of_ids [ Identifier.standard 0x100 ] in
  let d = Decision.create Decision.Reading l in
  Alcotest.(check bool) "grant" true
    (Decision.decide d (Frame.data_std 0x100 "") = Decision.Grant);
  Alcotest.(check bool) "block" true
    (Decision.decide d (Frame.data_std 0x200 "") = Decision.Block);
  check Alcotest.int "grants" 1 (Decision.grants d);
  check Alcotest.int "blocks" 1 (Decision.blocks d);
  Decision.reset_counters d;
  check Alcotest.int "reset" 0 (Decision.grants d)

let test_decision_remote_frames () =
  let l = Approved_list.of_ids [ Identifier.standard 0x100 ] in
  let d = Decision.create Decision.Writing l in
  Alcotest.(check bool) "remote judged by id" true
    (Decision.decide d (Frame.remote (Identifier.standard 0x100) ~dlc:2)
    = Decision.Grant)

(* ---------- Register file ---------- *)

let test_registers_provisioning () =
  let r = Registers.create () in
  Alcotest.(check bool) "starts unlocked" false (Registers.locked r);
  Alcotest.(check bool) "filters off" false (Registers.read_filter_enabled r);
  (match Registers.write_reg r ~addr:Registers.cmd_add_read 0x100 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Registers.read_reg r ~addr:Registers.count_read with
  | Ok 1 -> ()
  | Ok n -> Alcotest.fail (Printf.sprintf "count %d" n)
  | Error e -> Alcotest.fail e);
  (match Registers.write_reg r ~addr:Registers.ctrl 0b111 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "locked" true (Registers.locked r);
  Alcotest.(check bool) "read enabled" true (Registers.read_filter_enabled r);
  Alcotest.(check bool) "write enabled" true (Registers.write_filter_enabled r)

let test_registers_lock_refuses_writes () =
  let r = Registers.create () in
  ignore (Registers.write_reg r ~addr:Registers.cmd_add_read 0x100);
  ignore (Registers.write_reg r ~addr:Registers.ctrl 0b111);
  (match Registers.write_reg r ~addr:Registers.cmd_add_read 0x200 with
  | Ok () -> Alcotest.fail "locked register accepted a write"
  | Error _ -> ());
  (match Registers.write_reg r ~addr:Registers.cmd_clear 0 with
  | Ok () -> Alcotest.fail "locked register accepted clear"
  | Error _ -> ());
  (* unlocking via CTRL is impossible: any different CTRL value is refused *)
  (match Registers.write_reg r ~addr:Registers.ctrl 0b011 with
  | Ok () -> Alcotest.fail "lock removed by CTRL write"
  | Error _ -> ());
  (* reads still work *)
  match Registers.read_reg r ~addr:Registers.count_read with
  | Ok 1 -> ()
  | _ -> Alcotest.fail "read failed under lock"

let test_registers_validation () =
  let r = Registers.create () in
  (match Registers.write_reg r ~addr:Registers.cmd_add_read 0x800 with
  | Ok () -> Alcotest.fail "accepted out-of-range id"
  | Error _ -> ());
  (match Registers.write_reg r ~addr:Registers.status 1 with
  | Ok () -> Alcotest.fail "wrote read-only register"
  | Error _ -> ());
  (match Registers.write_reg r ~addr:0xFF 1 with
  | Ok () -> Alcotest.fail "wrote unknown register"
  | Error _ -> ());
  match Registers.read_reg r ~addr:Registers.cmd_clear with
  | Ok _ -> Alcotest.fail "read write-only register"
  | Error _ -> ()

let test_registers_hard_reset () =
  let r = Registers.create () in
  ignore (Registers.write_reg r ~addr:Registers.cmd_add_write 0x42);
  ignore (Registers.write_reg r ~addr:Registers.ctrl 0b111);
  Registers.hard_reset r;
  Alcotest.(check bool) "unlocked" false (Registers.locked r);
  check Alcotest.int "lists cleared" 0
    (Approved_list.cardinal (Registers.write_list r))

let test_registers_integrity_seal () =
  let r = Registers.create () in
  Alcotest.(check bool) "sealed at creation" true (Registers.integrity_ok r);
  ignore (Registers.write_reg r ~addr:Registers.cmd_add_read 0x100);
  ignore (Registers.write_reg r ~addr:Registers.ctrl 0b111);
  Alcotest.(check bool) "authorised writes reseal" true
    (Registers.integrity_ok r);
  (* a bit flip lands in approved-list RAM behind the register interface *)
  Approved_list.add (Registers.read_list r) (Identifier.standard 0x101);
  Alcotest.(check bool) "corruption detected" false (Registers.integrity_ok r);
  Registers.hard_reset r;
  Alcotest.(check bool) "hard reset restores the seal" true
    (Registers.integrity_ok r)

let test_hpe_integrity_fails_closed () =
  let sim = Engine.create () in
  let bus = Bus.create ~bitrate:500_000.0 sim in
  let a = Node.create ~name:"a" bus in
  let b = Node.create ~name:"b" bus in
  let hpe = Hpe.install b in
  (match Hpe.provision hpe (Config.make ~read_ids:[ 0x100 ] ~write_ids:[] ())
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Approved_list.add (Registers.read_list (Hpe.registers hpe))
    (Identifier.standard 0x200);
  Alcotest.(check bool) "integrity lost" false (Hpe.integrity_ok hpe);
  (* fail closed: the corrupted engine passes nothing — not even the id the
     genuine config approved, and certainly not the one the flip added *)
  ignore (Node.send a (Frame.data_std 0x100 ""));
  ignore (Node.send a (Frame.data_std 0x200 ""));
  Engine.run_until sim 0.01;
  check Alcotest.int "nothing delivered" 0 (Node.received_count b);
  check Alcotest.int "both land on the integrity counter" 2
    (Hpe.integrity_blocks hpe);
  (* re-provisioning (the scrub path) restores service *)
  Registers.hard_reset (Hpe.registers hpe);
  (match Hpe.provision hpe (Config.make ~read_ids:[ 0x100 ] ~write_ids:[] ())
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "integrity restored" true (Hpe.integrity_ok hpe);
  ignore (Node.send a (Frame.data_std 0x100 ""));
  Engine.run_until sim 0.02;
  check Alcotest.int "approved traffic flows again" 1 (Node.received_count b)

let test_hpe_integrity_gates_tx () =
  let sim = Engine.create () in
  let bus = Bus.create ~bitrate:500_000.0 sim in
  let a = Node.create ~name:"a" bus in
  let _b = Node.create ~name:"b" bus in
  let hpe = Hpe.install a in
  (match Hpe.provision hpe (Config.make ~read_ids:[] ~write_ids:[ 0x100 ] ())
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "approved write passes" true
    (Node.send a (Frame.data_std 0x100 ""));
  Approved_list.add (Registers.write_list (Hpe.registers hpe))
    (Identifier.standard 0x200);
  Alcotest.(check bool) "corrupted engine refuses writes" false
    (Node.send a (Frame.data_std 0x100 ""));
  Alcotest.(check bool) "including the flipped-in id" false
    (Node.send a (Frame.data_std 0x200 ""));
  check Alcotest.int "tx integrity blocks" 2 (Hpe.integrity_blocks hpe)

(* ---------- Policy -> config ---------- *)

let policy_engine src =
  match Compile.of_source src with
  | Ok db -> PEngine.create db
  | Error e -> Alcotest.fail e

let test_config_of_policy () =
  let engine =
    policy_engine
      "policy \"p\" version 1 { default deny; asset telemetry { allow read \
       from ecu messages 0x10..0x12; allow write from ecu messages 0x20; } }"
  in
  let bindings =
    List.map
      (fun id -> { Config.msg_id = id; asset = "telemetry" })
      [ 0x10; 0x11; 0x12; 0x20; 0x30 ]
  in
  let cfg = Config.of_policy engine ~mode:"normal" ~subject:"ecu" ~bindings in
  Alcotest.(check (list int)) "read ids" [ 0x10; 0x11; 0x12 ] cfg.Config.read_ids;
  Alcotest.(check (list int)) "write ids" [ 0x20 ] cfg.Config.write_ids

let test_config_provision () =
  let r = Registers.create () in
  let cfg = (Config.make ~read_ids:[ 0x10; 0x11 ] ~write_ids:[ 0x20 ] ()) in
  (match Config.provision r cfg () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "locked after provision" true (Registers.locked r);
  check Alcotest.int "read count" 2 (Approved_list.cardinal (Registers.read_list r));
  check Alcotest.int "write count" 1 (Approved_list.cardinal (Registers.write_list r));
  (* provisioning twice must fail: the lock holds *)
  match Config.provision r cfg () with
  | Ok () -> Alcotest.fail "provisioned over a locked register file"
  | Error _ -> ()

(* ---------- Rate limiter ---------- *)

module Rate_limiter = Secpol_hpe.Rate_limiter

let rate count window_ms = Secpol_policy.Ast.rate_limit ~count ~window_ms

let test_rate_limiter_window () =
  let rl = Rate_limiter.create () in
  Rate_limiter.set rl ~msg_id:0x200 (rate 2 1000);
  Alcotest.(check bool) "unlimited id" true (Rate_limiter.admit rl ~now:0.0 ~msg_id:0x100);
  Alcotest.(check bool) "1st" true (Rate_limiter.admit rl ~now:0.0 ~msg_id:0x200);
  Alcotest.(check bool) "2nd" true (Rate_limiter.admit rl ~now:0.5 ~msg_id:0x200);
  Alcotest.(check bool) "3rd blocked" false (Rate_limiter.admit rl ~now:0.9 ~msg_id:0x200);
  Alcotest.(check bool) "window slides" true (Rate_limiter.admit rl ~now:1.1 ~msg_id:0x200)

let test_rate_limiter_boundary () =
  (* the shared window semantics: a grant at time g stops counting at
     exactly g + window (inclusive expiry) *)
  let rl = Rate_limiter.create () in
  Rate_limiter.set rl ~msg_id:0x200 (rate 1 1000);
  Alcotest.(check bool) "grant at 0" true
    (Rate_limiter.admit rl ~now:0.0 ~msg_id:0x200);
  Alcotest.(check bool) "blocked just inside" false
    (Rate_limiter.admit rl ~now:0.9999 ~msg_id:0x200);
  Alcotest.(check bool) "admitted exactly at the boundary" true
    (Rate_limiter.admit rl ~now:1.0 ~msg_id:0x200)

let test_rate_limiter_backwards_clock () =
  (* hardware budgets inherit Rate_window's clamp: a backwards clock step
     keeps live grants blocking until their original expiry *)
  let rl = Rate_limiter.create () in
  Rate_limiter.set rl ~msg_id:0x200 (rate 1 1000);
  Alcotest.(check bool) "grant at 5" true
    (Rate_limiter.admit rl ~now:5.0 ~msg_id:0x200);
  Alcotest.(check bool) "blocked at the regressed clock" false
    (Rate_limiter.admit rl ~now:0.0 ~msg_id:0x200);
  Alcotest.(check bool) "blocked just before expiry" false
    (Rate_limiter.admit rl ~now:5.999 ~msg_id:0x200);
  Alcotest.(check bool) "admitted once the grant expires" true
    (Rate_limiter.admit rl ~now:6.0 ~msg_id:0x200)

let test_rate_limiter_config () =
  let rl = Rate_limiter.create () in
  Rate_limiter.set rl ~msg_id:1 (rate 1 100);
  Rate_limiter.set rl ~msg_id:2 (rate 5 200);
  check Alcotest.int "two limits" 2 (List.length (Rate_limiter.limits rl));
  Alcotest.(check bool) "limit lookup" true
    (Rate_limiter.limit rl ~msg_id:1 = Some (rate 1 100));
  Rate_limiter.remove rl ~msg_id:1;
  Alcotest.(check bool) "removed" true (Rate_limiter.limit rl ~msg_id:1 = None);
  ignore (Rate_limiter.admit rl ~now:0.0 ~msg_id:2);
  Rate_limiter.reset_state rl;
  (* full budget again *)
  for _ = 1 to 5 do
    Alcotest.(check bool) "fresh budget" true
      (Rate_limiter.admit rl ~now:0.0 ~msg_id:2)
  done;
  Rate_limiter.clear rl;
  check Alcotest.int "cleared" 0 (List.length (Rate_limiter.limits rl))

let test_config_extracts_rates () =
  let engine =
    policy_engine
      "policy \"p\" version 1 { default deny; asset lock { allow write from \
       ecu messages 0x200 rate 2 per 10000; allow write from ecu messages \
       0x201; } }"
  in
  let bindings =
    [ { Config.msg_id = 0x200; asset = "lock" };
      { Config.msg_id = 0x201; asset = "lock" } ]
  in
  let cfg = Config.of_policy engine ~mode:"normal" ~subject:"ecu" ~bindings in
  Alcotest.(check (list int)) "both writable" [ 0x200; 0x201 ] cfg.Config.write_ids;
  Alcotest.(check bool) "rate extracted for 0x200" true
    (List.assoc_opt 0x200 cfg.Config.write_rates = Some (rate 2 10_000));
  Alcotest.(check bool) "0x201 unlimited" true
    (List.assoc_opt 0x201 cfg.Config.write_rates = None)

(* ---------- Engine on a node ---------- *)

let make_net () =
  let sim = Engine.create () in
  let bus = Bus.create ~bitrate:500_000.0 sim in
  (sim, bus)

let test_hpe_transparent_until_enabled () =
  let sim, bus = make_net () in
  let a = Node.create ~name:"a" bus in
  let b = Node.create ~name:"b" bus in
  let _hpe = Hpe.install b in
  ignore (Node.send a (Frame.data_std 0x100 ""));
  Engine.run_until sim 0.01;
  check Alcotest.int "passes before provisioning" 1 (Node.received_count b)

let test_hpe_read_filter () =
  let sim, bus = make_net () in
  let a = Node.create ~name:"a" bus in
  let b = Node.create ~name:"b" bus in
  let hpe = Hpe.install b in
  (match Hpe.provision hpe (Config.make ~read_ids:[ 0x100 ] ~write_ids:[] ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  ignore (Node.send a (Frame.data_std 0x100 ""));
  ignore (Node.send a (Frame.data_std 0x200 ""));
  Engine.run_until sim 0.01;
  check Alcotest.int "only approved delivered" 1 (Node.received_count b);
  check Alcotest.int "one read block" 1 (Hpe.read_blocks hpe);
  check Alcotest.int "one read grant" 1 (Hpe.read_grants hpe)

let test_hpe_write_filter () =
  let sim, bus = make_net () in
  let a = Node.create ~name:"a" bus in
  let b = Node.create ~name:"b" bus in
  let hpe = Hpe.install a in
  (match Hpe.provision hpe (Config.make ~read_ids:[] ~write_ids:[ 0x100 ] ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "approved write passes" true
    (Node.send a (Frame.data_std 0x100 ""));
  Alcotest.(check bool) "unapproved write refused" false
    (Node.send a (Frame.data_std 0x200 ""));
  Engine.run_until sim 0.01;
  check Alcotest.int "victim only sees approved" 1 (Node.received_count b);
  check Alcotest.int "write blocks" 1 (Hpe.write_blocks hpe)

let test_hpe_survives_firmware_filter_clear () =
  (* The paper's core argument: software acceptance filters die with the
     firmware; the locked HPE does not. *)
  let sim, bus = make_net () in
  let a = Node.create ~name:"a" bus in
  let b =
    Node.create
      ~filters:[ Secpol_can.Acceptance.exact (Identifier.standard 0x100) ]
      ~name:"b" bus
  in
  let hpe = Hpe.install b in
  (match Hpe.provision hpe (Config.make ~read_ids:[ 0x100 ] ~write_ids:[] ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* compromised firmware clears the software filters... *)
  Secpol_can.Controller.set_filters (Node.controller b) [];
  (* ...and attempts to clear the HPE through its registers *)
  (match
     Registers.write_reg (Hpe.registers hpe) ~addr:Registers.cmd_clear 0
   with
  | Ok () -> Alcotest.fail "firmware reconfigured a locked HPE"
  | Error _ -> ());
  ignore (Node.send a (Frame.data_std 0x200 ""));
  Engine.run_until sim 0.01;
  check Alcotest.int "HPE still blocks" 0 (Node.received_count b)

let test_hpe_unlocked_is_reconfigurable () =
  let _, bus = make_net () in
  let b = Node.create ~name:"b" bus in
  let hpe = Hpe.install b in
  (match
     Hpe.provision_unlocked hpe (Config.make ~read_ids:[ 0x100 ] ~write_ids:[] ())
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "not locked" false (Hpe.locked hpe);
  match Registers.write_reg (Hpe.registers hpe) ~addr:Registers.cmd_clear 0 with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("unlocked HPE refused reconfiguration: " ^ e)

let test_hpe_write_rate_shaping () =
  let sim, bus = make_net () in
  let a = Node.create ~name:"a" bus in
  let b = Node.create ~name:"b" bus in
  let hpe = Hpe.install a in
  let cfg =
    Config.make ~read_ids:[] ~write_ids:[ 0x200 ]
      ~write_rates:[ (0x200, rate 2 10_000) ]
      ()
  in
  (match Hpe.provision hpe cfg with Ok () -> () | Error e -> Alcotest.fail e);
  (* a replay storm: 10 frames back to back *)
  let accepted = ref 0 in
  for _ = 1 to 10 do
    if Node.send a (Frame.data_std 0x200 "\x01") then incr accepted
  done;
  Engine.run_until sim 0.1;
  check Alcotest.int "storm shaped to the budget" 2 !accepted;
  check Alcotest.int "victim sees the budget" 2 (Node.received_count b);
  check Alcotest.int "rate blocks counted" 8 (Hpe.rate_blocks hpe);
  (* the budget recovers with time *)
  Engine.run_until sim 11.0;
  Alcotest.(check bool) "recovered" true (Node.send a (Frame.data_std 0x200 "\x01"))

(* ---------- batched rx gate / candump replay ---------- *)

let batch_config () =
  Config.make ~read_ids:[ 0x100; 0x101; 0x102; 0x200 ] ~own_ids:[ 0x300 ]
    ~write_ids:[] ()

(* every shape the rx gate distinguishes: approved, unapproved, spoofed
   (own id arriving from the bus), repeated so per-class counters move *)
let batch_ids = [| 0x100; 0x555; 0x101; 0x300; 0x200; 0x102; 0x555; 0x100 |]

let test_gate_rx_batch_matches_scalar () =
  (* scalar side: frames delivered one at a time through the simulator *)
  let sim, bus = make_net () in
  let a = Node.create ~name:"a" bus in
  let b = Node.create ~name:"b" bus in
  let scalar = Hpe.install b in
  (match Hpe.provision scalar (batch_config ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Array.iter (fun id -> ignore (Node.send a (Frame.data_std id ""))) batch_ids;
  Engine.run_until sim 0.1;
  (* batched side: same IDs as one column through an identical engine *)
  let _sim2, bus2 = make_net () in
  let b2 = Node.create ~name:"b2" bus2 in
  let batched = Hpe.install b2 in
  (match Hpe.provision batched (batch_config ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let out = Array.make (Array.length batch_ids) false in
  Hpe.gate_rx_batch batched ~ids:batch_ids ~out ();
  let accepted = Array.fold_left (fun n ok -> if ok then n + 1 else n) 0 out in
  check Alcotest.int "accepts = scalar deliveries" (Node.received_count b)
    accepted;
  check Alcotest.int "read grants agree" (Hpe.read_grants scalar)
    (Hpe.read_grants batched);
  check Alcotest.int "read blocks agree" (Hpe.read_blocks scalar)
    (Hpe.read_blocks batched);
  check Alcotest.int "spoof alerts agree" (Hpe.spoof_alerts scalar)
    (Hpe.spoof_alerts batched);
  (* prefix form: judging only the first 3 must leave the tail untouched *)
  let out3 = Array.make 3 true in
  let before = Hpe.read_grants batched + Hpe.read_blocks batched in
  Hpe.gate_rx_batch batched ~n:3 ~ids:batch_ids ~out:out3 ();
  check Alcotest.int "n limits the sweep" (before + 3)
    (Hpe.read_grants batched + Hpe.read_blocks batched);
  Alcotest.check_raises "out too short"
    (Invalid_argument "Hpe.Engine.gate_rx_batch: out array shorter than the batch")
    (fun () -> Hpe.gate_rx_batch batched ~ids:batch_ids ~out:out3 ())

let test_gate_rx_batch_fails_closed () =
  let _sim, bus = make_net () in
  let b = Node.create ~name:"b" bus in
  let hpe = Hpe.install b in
  (match Hpe.provision hpe (batch_config ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Approved_list.add (Registers.read_list (Hpe.registers hpe))
    (Identifier.standard 0x700);
  let out = Array.make (Array.length batch_ids) true in
  Hpe.gate_rx_batch hpe ~ids:batch_ids ~out ();
  Alcotest.(check bool) "nothing passes a corrupted file" true
    (Array.for_all not out);
  check Alcotest.int "all land on the integrity counter"
    (Array.length batch_ids)
    (Hpe.integrity_blocks hpe)

let test_replay_candump () =
  let _sim, bus = make_net () in
  let b = Node.create ~name:"b" bus in
  let hpe = Hpe.install b in
  (match Hpe.provision hpe (batch_config ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* a capture mixing standard runs with an extended frame in the middle,
     so the replay has to flush its column to keep capture order *)
  let record t frame =
    { Secpol_can.Candump.time = t; interface = "can0"; frame }
  in
  let records =
    [
      record 0.001 (Frame.data_std 0x100 "\x01");
      record 0.002 (Frame.data_std 0x555 "\x02");
      record 0.003 (Frame.data_ext 0x1abcd "\x03");
      record 0.004 (Frame.data_std 0x200 "\x04");
      record 0.005 (Frame.data_std 0x300 "\x05");
    ]
  in
  let r = Hpe.replay_candump hpe records in
  check Alcotest.int "frames" 5 r.Hpe.frames;
  check Alcotest.int "accepted + dropped = frames" 5
    (r.Hpe.accepted + r.Hpe.dropped);
  (* 0x100 and 0x200 approved; 0x555, the extended id and the spoofed
     0x300 are not *)
  check Alcotest.int "accepted" 2 r.Hpe.accepted;
  check Alcotest.int "dropped" 3 r.Hpe.dropped;
  check Alcotest.int "spoof alert recorded" 1 (Hpe.spoof_alerts hpe);
  check Alcotest.int "grants counted" 2 (Hpe.read_grants hpe);
  check Alcotest.int "blocks counted" 3 (Hpe.read_blocks hpe)

let test_hpe_uninstall () =
  let sim, bus = make_net () in
  let a = Node.create ~name:"a" bus in
  let b = Node.create ~name:"b" bus in
  let hpe = Hpe.install b in
  (match Hpe.provision hpe (Config.make ~read_ids:[] ~write_ids:[] ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Hpe.uninstall hpe;
  ignore (Node.send a (Frame.data_std 0x200 ""));
  Engine.run_until sim 0.01;
  check Alcotest.int "gates removed" 1 (Node.received_count b)

let () =
  Alcotest.run "secpol_hpe"
    [
      ( "approved-list",
        [
          quick "bitset basics" (test_list_basic Approved_list.Bitset);
          quick "hashtable basics" (test_list_basic Approved_list.Hashtable);
          quick "intervals basics" (test_list_basic Approved_list.Intervals);
          quick "ranges" test_list_range;
          quick "intervals bulk ranges" test_intervals_bulk_range;
          quick "intervals to_ids" test_intervals_to_ids;
          quick "to_ids sorted" test_list_to_ids_sorted;
          QCheck_alcotest.to_alcotest prop_backends_agree;
        ] );
      ( "decision",
        [
          quick "grant/block + counters" test_decision_block;
          quick "remote frames" test_decision_remote_frames;
        ] );
      ( "registers",
        [
          quick "provisioning" test_registers_provisioning;
          quick "lock refuses writes" test_registers_lock_refuses_writes;
          quick "validation" test_registers_validation;
          quick "hard reset" test_registers_hard_reset;
          quick "integrity seal" test_registers_integrity_seal;
        ] );
      ( "integrity",
        [
          quick "rx fails closed" test_hpe_integrity_fails_closed;
          quick "tx fails closed" test_hpe_integrity_gates_tx;
        ] );
      ( "config",
        [
          quick "of_policy" test_config_of_policy;
          quick "provision + lock" test_config_provision;
          quick "rate extraction" test_config_extracts_rates;
        ] );
      ( "rate-limiter",
        [
          quick "sliding window" test_rate_limiter_window;
          quick "window boundary" test_rate_limiter_boundary;
          quick "backwards clock" test_rate_limiter_backwards_clock;
          quick "configuration" test_rate_limiter_config;
          quick "write shaping on a node" test_hpe_write_rate_shaping;
        ] );
      ( "engine",
        [
          quick "transparent until enabled" test_hpe_transparent_until_enabled;
          quick "read filter" test_hpe_read_filter;
          quick "write filter" test_hpe_write_filter;
          quick "survives firmware compromise"
            test_hpe_survives_firmware_filter_clear;
          quick "unlocked reconfigurable" test_hpe_unlocked_is_reconfigurable;
          quick "uninstall" test_hpe_uninstall;
        ] );
      ( "batched",
        [
          quick "gate_rx_batch matches the scalar gate"
            test_gate_rx_batch_matches_scalar;
          quick "gate_rx_batch fails closed on corruption"
            test_gate_rx_batch_fails_closed;
          quick "candump replay" test_replay_candump;
        ] );
    ]
