(* Tests for the life-cycle models: Fig. 1 phases, response chains, fleet
   roll-out and the Q2 exposure-window comparison. *)

module Phases = Secpol_lifecycle.Phases
module Response = Secpol_lifecycle.Response
module Ota = Secpol_lifecycle.Ota
module Comparison = Secpol_lifecycle.Comparison
module Rng = Secpol_sim.Rng
module Stats = Secpol_sim.Stats

let check = Alcotest.check

let quick name f = Alcotest.test_case name `Quick f

let slow name f = Alcotest.test_case name `Slow f

(* ---------- Phases (Fig. 1) ---------- *)

let test_pipeline_structure () =
  check Alcotest.int "ten stages" 10 (List.length Phases.pipeline);
  (* the bridge sits between modelling and testing *)
  let processes = List.map (fun (s : Phases.stage) -> s.process) Phases.pipeline in
  let rec groups = function
    | [] -> []
    | x :: rest ->
        let rec skip = function
          | y :: r when y = x -> skip r
          | r -> r
        in
        x :: groups (skip rest)
  in
  Alcotest.(check int) "three contiguous process groups" 3
    (List.length (groups processes))

let test_pipeline_stage_lookup () =
  (match Phases.find "threat_rating" with
  | Some s ->
      Alcotest.(check bool) "in modelling" true
        (s.Phases.process = Phases.Threat_modelling)
  | None -> Alcotest.fail "threat_rating missing");
  Alcotest.(check bool) "unknown stage" true (Phases.find "nonsense" = None)

let test_pipeline_countermeasure_outputs () =
  match Phases.find "countermeasures" with
  | Some s ->
      Alcotest.(check bool) "mentions policies" true
        (List.exists
           (fun o ->
             String.length o >= 8
             && String.sub o 0 8 = "security")
           s.Phases.outputs)
  | None -> Alcotest.fail "countermeasures stage missing"

(* ---------- Response chains ---------- *)

let test_triangular_bounds () =
  let rng = Rng.create 1L in
  for _ = 1 to 1000 do
    let v = Response.triangular rng ~low:2.0 ~mode:5.0 ~high:11.0 in
    Alcotest.(check bool) "within bounds" true (v >= 2.0 && v <= 11.0)
  done

let test_triangular_degenerate () =
  let rng = Rng.create 1L in
  check Alcotest.(float 0.0) "point mass" 4.0
    (Response.triangular rng ~low:4.0 ~mode:4.0 ~high:4.0);
  Alcotest.check_raises "bad parameters"
    (Invalid_argument "Response.triangular: need low <= mode <= high")
    (fun () -> ignore (Response.triangular rng ~low:5.0 ~mode:1.0 ~high:9.0))

let test_plans_have_expected_shape () =
  let rng = Rng.create 7L in
  let g = Response.sample rng Response.Guideline_redesign in
  Alcotest.(check bool) "guideline recalls" true g.Response.requires_recall;
  check Alcotest.int "four stages" 4 (List.length g.Response.stages);
  let p = Response.sample rng Response.Policy_update in
  Alcotest.(check bool) "policy is OTA" false p.Response.requires_recall;
  check Alcotest.int "three stages" 3 (List.length p.Response.stages);
  Alcotest.(check bool) "development positive" true
    (Response.development_days p > 0.0)

let test_policy_always_faster_development () =
  (* worst-case policy development (10 days) < best-case redesign (111) *)
  let rng = Rng.create 11L in
  for _ = 1 to 200 do
    let g = Response.development_days (Response.sample rng Response.Guideline_redesign) in
    let p = Response.development_days (Response.sample rng Response.Policy_update) in
    Alcotest.(check bool) "policy development strictly shorter" true (p < g)
  done

(* ---------- OTA / recall roll-out ---------- *)

let small_params =
  { Ota.fleet = 2000; ota_mean_days = 3.0; recall_mean_days = 90.0; recall_no_show = 0.25 }

let test_ota_quantiles_monotone () =
  let rng = Rng.create 3L in
  let r = Ota.simulate rng small_params Ota.Over_the_air in
  match (r.Ota.days_to_quantile 0.5, r.Ota.days_to_quantile 0.95) with
  | Some d50, Some d95 ->
      Alcotest.(check bool) "median before p95" true (d50 <= d95);
      Alcotest.(check bool) "median near mean*ln2" true (d50 > 1.0 && d50 < 4.0)
  | _ -> Alcotest.fail "OTA quantiles missing"

let test_recall_never_finishes () =
  let rng = Rng.create 3L in
  let r = Ota.simulate rng small_params Ota.Recall in
  Alcotest.(check bool) "25% never protected -> q=0.95 unreachable" true
    (r.Ota.days_to_quantile 0.95 = None);
  match r.Ota.days_to_quantile 0.5 with
  | Some d -> Alcotest.(check bool) "median is months" true (d > 30.0)
  | None -> Alcotest.fail "median should be reachable"

let test_protected_at_curve () =
  let rng = Rng.create 3L in
  let r = Ota.simulate rng small_params Ota.Over_the_air in
  check Alcotest.(float 0.01) "at t=0 nobody" 0.0 (r.Ota.protected_at 0.0);
  Alcotest.(check bool) "grows" true
    (r.Ota.protected_at 3.0 > 0.4 && r.Ota.protected_at 3.0 < 0.9);
  Alcotest.(check bool) "eventually everyone" true (r.Ota.protected_at 1000.0 > 0.999)

let test_quantile_edges () =
  let rng = Rng.create 3L in
  let r = Ota.simulate rng small_params Ota.Over_the_air in
  check Alcotest.(option (float 0.0)) "q=0" (Some 0.0) (r.Ota.days_to_quantile 0.0);
  Alcotest.(check bool) "q>1 impossible" true (r.Ota.days_to_quantile 1.5 = None);
  (* q = 1.0 exactly: reachable over the air (everyone eventually adopts),
     and the last adopter is no earlier than the median *)
  (match (r.Ota.days_to_quantile 1.0, r.Ota.days_to_quantile 0.5) with
  | Some last, Some median ->
      Alcotest.(check bool) "q=1 finite and ordered" true
        (Float.is_finite last && last >= median)
  | _ -> Alcotest.fail "q=1.0 should be reachable over the air")

let test_quantile_edges_heavy_no_show () =
  (* under heavy no-show, quantiles just above the reachable fraction are
     unreachable while those safely below stay finite — which also pins
     that the never-adopters (infinity) sort to the tail of the times
     array rather than interleaving (the Float.compare regression) *)
  let params = { small_params with Ota.recall_no_show = 0.6 } in
  let rng = Rng.create 17L in
  let r = Ota.simulate rng params Ota.Recall in
  let reachable = r.Ota.protected_at 1e9 in
  Alcotest.(check bool) "roughly 40% reachable" true
    (reachable > 0.3 && reachable < 0.5);
  (match r.Ota.days_to_quantile 0.25 with
  | Some d -> Alcotest.(check bool) "below the plateau: finite" true (Float.is_finite d)
  | None -> Alcotest.fail "q=0.25 should be reachable");
  Alcotest.(check bool) "just above the plateau: unreachable" true
    (r.Ota.days_to_quantile (reachable +. 0.01) = None);
  Alcotest.(check bool) "q=1.0 unreachable" true (r.Ota.days_to_quantile 1.0 = None);
  (* the protection curve saturates at the reachable fraction: every
     finite adopter sorts before the first infinity *)
  check Alcotest.(float 0.0001) "curve plateau = reachable fraction" reachable
    (r.Ota.protected_at 1e12)

(* ---------- Fleet distribution ---------- *)

module Fleet = Secpol_lifecycle.Fleet
module Policy = Secpol_policy

let v n =
  match
    Policy.Parser.parse
      (Printf.sprintf "policy \"fleetpol\" version %d { default deny; }" n)
  with
  | Ok p -> p
  | Error e -> Alcotest.fail e

let make_fleet ?(size = 200) () =
  match Fleet.create ~size (v 1) with
  | Ok f -> f
  | Error e -> Alcotest.fail e

let test_fleet_factory_state () =
  let f = make_fleet () in
  check Alcotest.int "size" 200 (Fleet.size f);
  Alcotest.(check (list (pair int int))) "all on v1" [ (1, 200) ] (Fleet.versions f)

let test_fleet_ota_distribution () =
  let f = make_fleet () in
  match Fleet.distribute f (Policy.Update.bundle (v 2)) with
  | Error e -> Alcotest.fail e
  | Ok dist ->
      check Alcotest.int "everyone adopts" 200 (Array.length dist.Fleet.adoption_days);
      check Alcotest.int "none left behind" 0 dist.Fleet.never;
      Alcotest.(check (list (pair int int))) "all on v2" [ (2, 200) ] (Fleet.versions f);
      (match Fleet.days_to_quantile dist f 0.95 with
      | Some d -> Alcotest.(check bool) "p95 within days" true (d > 0.0 && d < 60.0)
      | None -> Alcotest.fail "p95 unreachable");
      Alcotest.(check bool) "fraction grows" true
        (Fleet.protected_fraction dist f ~days:30.0
        > Fleet.protected_fraction dist f ~days:1.0)

let test_fleet_recall_no_shows () =
  let f = make_fleet () in
  let params = { Secpol_lifecycle.Ota.default_params with recall_no_show = 0.5 } in
  match
    Fleet.distribute f ~channel:Secpol_lifecycle.Ota.Recall ~params
      (Policy.Update.bundle (v 2))
  with
  | Error e -> Alcotest.fail e
  | Ok dist ->
      Alcotest.(check bool) "many never adopt" true (dist.Fleet.never > 50);
      Alcotest.(check bool) "fleet split across versions" true
        (List.length (Fleet.versions f) = 2);
      Alcotest.(check bool) "full protection unreachable" true
        (Fleet.days_to_quantile dist f 0.99 = None)

let test_fleet_rejects_tampered_deliveries () =
  let f = make_fleet ~size:100 () in
  match Fleet.distribute f ~corruption:0.3 (Policy.Update.bundle (v 2)) with
  | Error e -> Alcotest.fail e
  | Ok dist ->
      Alcotest.(check bool) "some deliveries arrived tampered" true
        (dist.Fleet.tampered_rejections > 5);
      (* integrity checking means everyone still converges on the real v2 *)
      Alcotest.(check (list (pair int int))) "clean convergence" [ (2, 100) ]
        (Fleet.versions f)

let test_fleet_total_corruption_rejected () =
  (* regression: corruption = 1.0 used to pass validation and then spin
     forever in the clean-retry loop (every retry arrives tampered too).
     The boundary is now rejected up front — and the call must return, not
     hang, which is the real property this test pins. *)
  let f = make_fleet ~size:5 () in
  (match Fleet.distribute f ~corruption:1.0 (Policy.Update.bundle (v 2)) with
  | Ok _ -> Alcotest.fail "corruption=1.0 accepted"
  | Error e ->
      Alcotest.(check bool) "error names the open interval" true
        (String.length e > 0 && e = "Fleet.distribute: corruption outside [0,1)"));
  (* values strictly inside [0,1) still terminate and converge *)
  match Fleet.distribute f ~corruption:0.99 (Policy.Update.bundle (v 2)) with
  | Ok dist ->
      Alcotest.(check bool) "heavy corruption still converges" true
        (dist.Fleet.tampered_rejections > 0);
      Alcotest.(check (list (pair int int))) "on v2" [ (2, 5) ] (Fleet.versions f)
  | Error e -> Alcotest.fail e

let test_fleet_recall_retries_use_recall_mean () =
  (* regression: corrupted recall deliveries used to retry after a delay
     drawn from [ota_mean_days], silently flattering the recall baseline.
     With a tiny OTA mean and a large recall mean, heavy corruption makes
     retry delays dominate total adoption time: the distribution is only
     plausible if retries travelled the recall channel. *)
  let params =
    { Secpol_lifecycle.Ota.fleet = 0; ota_mean_days = 0.001;
      recall_mean_days = 100.0; recall_no_show = 0.0 }
  in
  let f = make_fleet ~size:300 () in
  match
    Fleet.distribute f ~channel:Secpol_lifecycle.Ota.Recall ~params
      ~corruption:0.9 (Policy.Update.bundle (v 2))
  with
  | Error e -> Alcotest.fail e
  | Ok dist ->
      let n = Array.length dist.Fleet.adoption_days in
      check Alcotest.int "everyone eventually adopts" 300 n;
      let mean = Array.fold_left ( +. ) 0.0 dist.Fleet.adoption_days /. float_of_int n in
      (* expected ~9 retries per device, each ~100 days: the true mean is
         ~1000 days; under the bug retries cost ~0.001 days and the mean
         collapses to the ~100-day base delay *)
      Alcotest.(check bool)
        (Printf.sprintf "retry delays dominate (mean %.0f days)" mean)
        true (mean > 400.0)

let test_fleet_versions_after_partial_rollout () =
  (* a recall with no-shows leaves the fleet split; versions must account
     for every device, with the stragglers still on v1 *)
  let f = make_fleet ~size:400 () in
  let params = { Secpol_lifecycle.Ota.default_params with recall_no_show = 0.3 } in
  match
    Fleet.distribute f ~channel:Secpol_lifecycle.Ota.Recall ~params
      (Policy.Update.bundle (v 2))
  with
  | Error e -> Alcotest.fail e
  | Ok dist ->
      let versions = Fleet.versions f in
      let total = List.fold_left (fun acc (_, n) -> acc + n) 0 versions in
      check Alcotest.int "every device accounted for" 400 total;
      let count v = Option.value ~default:0 (List.assoc_opt v versions) in
      check Alcotest.int "stragglers still on v1" dist.Fleet.never (count 1);
      check Alcotest.int "adopters on v2"
        (Array.length dist.Fleet.adoption_days) (count 2);
      Alcotest.(check bool) "rollout genuinely partial" true
        (dist.Fleet.never > 0 && count 2 > 0)

let test_fleet_refuses_downgrade () =
  let f = make_fleet ~size:10 () in
  (match Fleet.distribute f (Policy.Update.bundle (v 2)) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match Fleet.distribute f (Policy.Update.bundle (v 2)) with
  | Ok _ -> Alcotest.fail "fleet accepted a non-newer bundle"
  | Error _ -> ()

(* ---------- Comparison (experiment Q2) ---------- *)

let test_comparison_orders_of_magnitude () =
  let params =
    { Ota.fleet = 1000; ota_mean_days = 3.0; recall_mean_days = 90.0; recall_no_show = 0.0 }
  in
  let results = Comparison.compare_all ~trials:100 ~target:0.95 ~params () in
  check Alcotest.int "three kinds" 3 (List.length results);
  match Comparison.speedup results with
  | Some s ->
      Alcotest.(check bool)
        (Printf.sprintf "speedup %.1fx is at least 10x" s)
        true (s >= 10.0)
  | None -> Alcotest.fail "no speedup computable"

let test_comparison_unreachable_counted () =
  (* with no-shows, a 0.95 target is usually unreachable by recall *)
  let params =
    { Ota.fleet = 500; ota_mean_days = 3.0; recall_mean_days = 90.0; recall_no_show = 0.25 }
  in
  let r =
    Comparison.run ~trials:50 ~target:0.95 ~params Response.Guideline_redesign
  in
  Alcotest.(check bool) "most trials never protect the fleet" true
    (r.Comparison.unreachable > 25);
  let p = Comparison.run ~trials:50 ~target:0.95 ~params Response.Policy_update in
  check Alcotest.int "OTA always reaches" 0 p.Comparison.unreachable

let test_comparison_robust_across_parameters () =
  (* sensitivity sweep: the ordering holds even with pessimistic OTA and
     optimistic recall assumptions *)
  List.iter
    (fun (ota_mean, recall_mean) ->
      let params =
        { Ota.fleet = 500; ota_mean_days = ota_mean; recall_mean_days = recall_mean;
          recall_no_show = 0.0 }
      in
      let results = Comparison.compare_all ~trials:50 ~target:0.9 ~params () in
      match Comparison.speedup results with
      | Some s ->
          Alcotest.(check bool)
            (Printf.sprintf "ota=%.0f recall=%.0f speedup %.1f" ota_mean recall_mean s)
            true (s > 2.0)
      | None -> Alcotest.fail "no speedup")
    [ (3.0, 90.0); (14.0, 30.0); (7.0, 60.0) ]

let test_comparison_validation () =
  Alcotest.check_raises "bad trials"
    (Invalid_argument "Comparison.run: trials must be positive") (fun () ->
      ignore (Comparison.run ~trials:0 Response.Policy_update));
  Alcotest.check_raises "bad target"
    (Invalid_argument "Comparison.run: target outside (0,1]") (fun () ->
      ignore (Comparison.run ~target:1.5 Response.Policy_update))

let () =
  Alcotest.run "secpol_lifecycle"
    [
      ( "phases",
        [
          quick "pipeline structure" test_pipeline_structure;
          quick "stage lookup" test_pipeline_stage_lookup;
          quick "countermeasure outputs" test_pipeline_countermeasure_outputs;
        ] );
      ( "response",
        [
          quick "triangular bounds" test_triangular_bounds;
          quick "triangular degenerate" test_triangular_degenerate;
          quick "plan shapes" test_plans_have_expected_shape;
          quick "policy development faster" test_policy_always_faster_development;
        ] );
      ( "rollout",
        [
          quick "OTA quantiles" test_ota_quantiles_monotone;
          quick "recall no-shows" test_recall_never_finishes;
          quick "protection curve" test_protected_at_curve;
          quick "quantile edges" test_quantile_edges;
          quick "quantile edges under heavy no-show" test_quantile_edges_heavy_no_show;
        ] );
      ( "fleet",
        [
          quick "factory state" test_fleet_factory_state;
          quick "OTA distribution" test_fleet_ota_distribution;
          quick "recall no-shows" test_fleet_recall_no_shows;
          quick "tampered deliveries rejected" test_fleet_rejects_tampered_deliveries;
          quick "total corruption rejected" test_fleet_total_corruption_rejected;
          quick "recall retries use recall mean" test_fleet_recall_retries_use_recall_mean;
          quick "versions after partial rollout" test_fleet_versions_after_partial_rollout;
          quick "downgrade refused" test_fleet_refuses_downgrade;
        ] );
      ( "comparison",
        [
          slow "orders of magnitude" test_comparison_orders_of_magnitude;
          slow "unreachable targets" test_comparison_unreachable_counted;
          slow "parameter robustness" test_comparison_robust_across_parameters;
          quick "validation" test_comparison_validation;
        ] );
    ]
