(* Tests for the static-analysis subsystem: diagnostics, the lint pass
   framework, the message-range-aware coverage fix, and the cross-layer
   HPE-consistency and threat-traceability passes.  One fixture policy per
   diagnostic code, asserting the exact code and rule indices emitted. *)

module Ast = Secpol_policy.Ast
module Parser = Secpol_policy.Parser
module Compile = Secpol_policy.Compile
module Ir = Secpol_policy.Ir
module Engine = Secpol_policy.Engine
module Coverage = Secpol_policy.Coverage
module Lint = Secpol_policy.Lint
module Diagnostic = Secpol_policy.Diagnostic
module Json = Secpol_policy.Json
module V = Secpol_vehicle

let check = Alcotest.check

let quick name f = Alcotest.test_case name `Quick f

let compile_ok src =
  match Parser.parse src with
  | Error e -> Alcotest.fail ("parse failed: " ^ e)
  | Ok p -> (
      match Compile.compile p with
      | Ok (db, _) -> db
      | Error issues ->
          Alcotest.fail
            ("compile failed: "
            ^ String.concat "; "
                (List.map (fun (i : Compile.issue) -> i.message) issues)))

let lint ?(config = Lint.default_config) ?passes src =
  Lint.run ?passes config (compile_ok src)

let codes diags =
  List.map (fun (d : Diagnostic.t) -> Diagnostic.id d.code) diags

let only code diags = Diagnostic.by_code code diags

let rules_of (d : Diagnostic.t) = d.rules

(* ---------- diagnostic core ---------- *)

let test_codes_stable () =
  Alcotest.(check (list string))
    "ids are stable"
    [
      "SP001"; "SP002"; "SP003"; "SP004"; "SP005"; "SP006"; "SP007"; "SP008";
      "SP009"; "SP010"; "SP011"; "SP012"; "SP013"; "SP014";
    ]
    (List.map Diagnostic.id Diagnostic.all_codes);
  Alcotest.(check (list string))
    "slugs are stable"
    [
      "conflict"; "shadowed"; "coverage-gap"; "unreachable-rule";
      "mode-unknown"; "rate-deny"; "rate-ineffective"; "hpe-mismatch";
      "threat-untraced"; "mode-mergeable"; "region-empty"; "allow-widened";
      "threat-unmitigated"; "semantics-divergence";
    ]
    (List.map Diagnostic.slug Diagnostic.all_codes);
  List.iter
    (fun c ->
      Alcotest.(check bool) "id resolves" true (Diagnostic.code_of_id (Diagnostic.id c) = Some c);
      Alcotest.(check bool) "slug resolves" true
        (Diagnostic.code_of_id (Diagnostic.slug c) = Some c))
    Diagnostic.all_codes

let test_diagnostic_order () =
  let info = Diagnostic.make ~severity:Diagnostic.Info Diagnostic.Coverage_gap "i" in
  let warn = Diagnostic.make Diagnostic.Shadowed "w" in
  let err = Diagnostic.make Diagnostic.Conflict "e" in
  let sorted = List.sort Diagnostic.compare [ info; warn; err ] in
  Alcotest.(check (list string)) "errors first" [ "SP001"; "SP002"; "SP003" ]
    (codes sorted);
  Alcotest.(check bool) "worst is error" true
    (Diagnostic.worst sorted = Some Diagnostic.Error);
  Alcotest.(check bool) "worst of empty" true (Diagnostic.worst [] = None)

(* ---------- fixtures, one per code ---------- *)

let test_sp001_conflict () =
  let diags =
    lint
      "policy \"x\" version 1 { asset a { allow write from evil; deny write \
       from evil; } }"
  in
  match only Diagnostic.Conflict diags with
  | [ d ] ->
      Alcotest.(check (list int)) "rule indices" [ 0; 1 ] (rules_of d);
      Alcotest.(check bool) "error severity" true (d.severity = Diagnostic.Error);
      Alcotest.(check (option string)) "asset" (Some "a") d.asset
  | l -> Alcotest.fail (Printf.sprintf "expected 1 conflict, got %d" (List.length l))

let test_sp002_shadowed () =
  let diags =
    lint
      "policy \"x\" version 1 { asset a { allow rw from any; allow read from \
       alice; } }"
  in
  match only Diagnostic.Shadowed diags with
  | [ d ] -> Alcotest.(check (list int)) "winner and dead" [ 0; 1 ] (rules_of d)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 shadowed, got %d" (List.length l))

let test_sp003_coverage_gap () =
  let diags =
    lint
      "policy \"x\" version 1 { default allow; asset a { allow read from \
       alice; } }"
  in
  match only Diagnostic.Coverage_gap diags with
  | [ d ] ->
      Alcotest.(check bool) "warning under default allow" true
        (d.severity = Diagnostic.Warning);
      Alcotest.(check (option string)) "subject" (Some "alice") d.subject;
      Alcotest.(check bool) "missing write cell" true (d.op = Some Ir.Write)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 gap, got %d" (List.length l))

let test_sp003_partial_coverage () =
  (* the satellite fix: a message-scoped rule must not count as covering the
     whole cell *)
  let diags =
    lint
      "policy \"x\" version 1 { default deny; asset a { allow read from \
       alice messages 0x100..0x10f; } }"
  in
  let gaps = only Diagnostic.Coverage_gap diags in
  (* the read cell is partially covered; the write cell is a plain gap *)
  check Alcotest.int "two findings" 2 (List.length gaps);
  match List.filter (fun (d : Diagnostic.t) -> d.op = Some Ir.Read) gaps with
  | [ d ] ->
      Alcotest.(check bool) "partial cell carries the decided range" true
        (d.msg_range = Some (0x100, 0x10f));
      Alcotest.(check bool) "info under default deny" true
        (d.severity = Diagnostic.Info)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 partial gap, got %d" (List.length l))

let test_rule_covers_respects_messages () =
  let db =
    compile_ok
      "policy \"x\" version 1 { asset a { allow read from alice messages \
       0x100..0x10f; } }"
  in
  let cell =
    { Coverage.mode = "(any)"; subject = "alice"; asset = "a"; op = Ir.Read }
  in
  (match db.Ir.rules with
  | [ r ] ->
      Alcotest.(check bool) "touches the cell" true (Coverage.rule_touches r cell);
      Alcotest.(check bool) "does not fully cover it" false
        (Coverage.rule_covers r cell)
  | _ -> Alcotest.fail "expected one rule");
  match Coverage.classify db cell with
  | Coverage.Partial [ g ] ->
      check Alcotest.int "lo" 0x100 g.Ast.lo;
      check Alcotest.int "hi" 0x10f g.Ast.hi
  | _ -> Alcotest.fail "expected a partial verdict"

let test_sp004_unreachable_deny_overrides () =
  let diags =
    lint
      "policy \"x\" version 1 { asset a { deny write from any; allow write \
       from evil; } }"
  in
  match only Diagnostic.Unreachable_rule diags with
  | [ d ] -> Alcotest.(check (list int)) "deny #0 kills allow #1" [ 0; 1 ] (rules_of d)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 unreachable, got %d" (List.length l))

let test_sp004_unreachable_allow_overrides () =
  let config = { Lint.default_config with strategy = Engine.Allow_overrides } in
  let src =
    "policy \"x\" version 1 { asset a { allow write from any; deny write \
     from evil; } }"
  in
  (match only Diagnostic.Unreachable_rule (lint ~config src) with
  | [ d ] -> Alcotest.(check (list int)) "allow #0 kills deny #1" [ 0; 1 ] (rules_of d)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 unreachable, got %d" (List.length l)));
  (* under deny-overrides the deny still wins somewhere, so it is reachable *)
  Alcotest.(check int) "reachable under deny-overrides" 0
    (List.length (only Diagnostic.Unreachable_rule (lint src)))

let test_sp004_unreachable_first_match () =
  let config = { Lint.default_config with strategy = Engine.First_match } in
  (match
     only Diagnostic.Unreachable_rule
       (lint ~config
          "policy \"x\" version 1 { asset a { allow write from any; deny \
           write from evil; } }")
   with
  | [ d ] -> Alcotest.(check (list int)) "earlier allow wins" [ 0; 1 ] (rules_of d)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 unreachable, got %d" (List.length l)));
  (* narrower rule first: both are reachable under first-match *)
  Alcotest.(check int) "narrow-first is fine" 0
    (List.length
       (only Diagnostic.Unreachable_rule
          (lint ~config
             "policy \"x\" version 1 { asset a { deny write from evil; allow \
              write from any; } }")))

let test_sp005_mode_unknown () =
  let config =
    { Lint.default_config with modes = Some [ "normal"; "fail_safe" ] }
  in
  let diags =
    lint ~config
      "policy \"x\" version 1 { mode remote_diagnotic { asset a { allow read \
       from alice; } } }"
  in
  match only Diagnostic.Mode_unknown diags with
  | [ d ] ->
      Alcotest.(check (list int)) "rule index" [ 0 ] (rules_of d);
      Alcotest.(check (option string)) "the typo" (Some "remote_diagnotic") d.mode;
      Alcotest.(check bool) "error severity" true (d.severity = Diagnostic.Error)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 mode-unknown, got %d" (List.length l))

let test_sp006_rate_on_deny () =
  (* the compiler refuses deny+rate, so exercise the defensive pass on a
     hand-built database *)
  let rule =
    {
      Ir.idx = 0;
      decision = Ast.Deny;
      ops = [ Ir.Write ];
      subjects = Ast.Any_subject;
      asset = "a";
      modes = None;
      messages = None;
      rate = Some (Ast.rate_limit ~count:1 ~window_ms:100);
      origin = "handmade v1";
    }
  in
  let db = { Ir.name = "handmade"; version = 1; default = Ast.Deny; rules = [ rule ] } in
  let diags = Lint.run ~passes:[ Lint.rate_pass ] Lint.default_config db in
  match only Diagnostic.Rate_deny diags with
  | [ d ] -> Alcotest.(check (list int)) "rule index" [ 0 ] (rules_of d)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 rate-deny, got %d" (List.length l))

let test_sp007_rate_ineffective () =
  let diags =
    lint
      "policy \"x\" version 1 { asset a { allow write from evil rate 1 per \
       100; allow write from any; } }"
  in
  match only Diagnostic.Rate_ineffective diags with
  | [ d ] ->
      Alcotest.(check (list int)) "unlimited #1 defeats rated #0" [ 0; 1 ] (rules_of d)
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected 1 rate-ineffective, got %d" (List.length l))

(* ---------- clean policy ---------- *)

let test_clean_policy_no_diagnostics () =
  let diags =
    lint
      "policy \"clean\" version 1 { default deny; asset a { allow read from \
       alice; deny write from alice; } }"
  in
  Alcotest.(check (list string)) "no findings" [] (codes diags)

(* ---------- registry ---------- *)

let test_registry () =
  let marker =
    Lint.pass ~name:"test-marker" ~short:"always fires" (fun _ _ ->
        [ Diagnostic.make Diagnostic.Coverage_gap "marker" ])
  in
  Lint.register marker;
  Alcotest.(check bool) "registered" true
    (List.exists (fun (p : Lint.pass) -> p.name = "test-marker") (Lint.registered ()));
  let diags =
    Lint.run Lint.default_config
      (compile_ok "policy \"x\" version 1 { default deny; }")
  in
  Alcotest.(check bool) "registered pass ran" true
    (List.exists (fun (d : Diagnostic.t) -> d.message = "marker") diags)

(* ---------- JSON ---------- *)

let test_json_value_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "he said \"hi\"\n");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.String "two" ]);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round trip" true (v = v')
  | Error e -> Alcotest.fail e

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.fail ("accepted: " ^ s)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "\"unterminated"; "{} trailing"; "nul" ]

let test_diagnostic_json_roundtrip () =
  let db =
    compile_ok
      "policy \"x\" version 1 { default allow; asset a { allow write from \
       evil rate 1 per 100; deny write from evil; allow read from alice \
       messages 0x10..0x1f; } }"
  in
  let diags = Lint.run ~passes:Lint.builtin Lint.default_config db in
  Alcotest.(check bool) "fixture produces diagnostics" true (diags <> []);
  let rendered = Json.to_string (Lint.report_to_json db diags) in
  match Json.of_string rendered with
  | Error e -> Alcotest.fail e
  | Ok json -> (
      match Option.bind (Json.member "diagnostics" json) Json.to_list with
      | None -> Alcotest.fail "no diagnostics field"
      | Some items ->
          let parsed =
            List.map
              (fun item ->
                match Diagnostic.of_json item with
                | Ok d -> d
                | Error e -> Alcotest.fail e)
              items
          in
          Alcotest.(check bool) "diagnostics survive the round trip" true
            (parsed = diags);
          check Alcotest.int "summary errors" (Diagnostic.count Diagnostic.Error diags)
            (Option.get
               (Option.bind
                  (Option.bind (Json.member "summary" json) (Json.member "errors"))
                  Json.to_int)))

(* ---------- cross-layer: HPE consistency (SP008) ---------- *)

let test_sp008_duplicate_id_mismatch () =
  (* two CAN bindings share id 0x50 on different assets; the policy allows
     the id for asset a only.  Per-id hardware filtering cannot express
     that split, so the HPE grants what the software engine denies. *)
  let bindings =
    [
      { Secpol_hpe.Config.msg_id = 0x50; asset = "a" };
      { Secpol_hpe.Config.msg_id = 0x50; asset = "b" };
    ]
  in
  let pass =
    V.Lint_passes.hpe_consistency ~bindings ~modes:[ "normal" ]
      ~subjects:[ "node" ] ()
  in
  let db =
    compile_ok
      "policy \"x\" version 1 { default deny; asset a { allow read from node \
       messages 0x50; } }"
  in
  let diags = Lint.run ~passes:[ pass ] Lint.default_config db in
  match only Diagnostic.Hpe_mismatch diags with
  | [ d ] ->
      Alcotest.(check (option string)) "the denied asset" (Some "b") d.asset;
      Alcotest.(check bool) "error severity" true (d.severity = Diagnostic.Error);
      Alcotest.(check bool) "names the id" true (d.msg_range = Some (0x50, 0x50))
  | l -> Alcotest.fail (Printf.sprintf "expected 1 hpe-mismatch, got %d" (List.length l))

let test_sp008_strategy_mismatch () =
  (* the HPE compiler resolves conflicts deny-overrides; a deployment that
     evaluates first-match disagrees on the conflicted cell *)
  let bindings = [ { Secpol_hpe.Config.msg_id = 0x50; asset = "a" } ] in
  let pass =
    V.Lint_passes.hpe_consistency ~bindings ~modes:[ "normal" ]
      ~subjects:[ "node" ] ()
  in
  let db =
    compile_ok
      "policy \"x\" version 1 { default deny; asset a { allow write from \
       node messages 0x50; deny write from node messages 0x50; } }"
  in
  let first_match = { Lint.default_config with strategy = Engine.First_match } in
  Alcotest.(check bool) "first-match deployment disagrees with HPE" true
    (only Diagnostic.Hpe_mismatch (Lint.run ~passes:[ pass ] first_match db) <> []);
  Alcotest.(check int) "deny-overrides deployment agrees" 0
    (List.length
       (only Diagnostic.Hpe_mismatch (Lint.run ~passes:[ pass ] Lint.default_config db)))

let test_sp008_baseline_policy_consistent () =
  (* the paper's transparency property: for the real car message map, the
     HPE configuration agrees with the software engine everywhere *)
  let db =
    Compile.compile_exn
      ~known_modes:(List.map V.Modes.name V.Modes.all)
      ~known_assets:V.Names.assets ~known_subjects:V.Names.assets
      (V.Policy_map.baseline ())
  in
  let diags =
    Lint.run
      ~passes:[ V.Lint_passes.hpe_consistency () ]
      Lint.default_config db
  in
  Alcotest.(check (list string)) "no mismatches" [] (codes diags)

(* ---------- cross-layer: threat traceability (SP009) ---------- *)

let test_sp009_orphaned_threat () =
  (* a policy that only protects the EV-ECU orphans the EPS rows of
     Table I, among others *)
  let db =
    compile_ok
      "policy \"x\" version 1 { default deny; mode normal { asset ev_ecu { \
       allow read from sensors; } } }"
  in
  let diags =
    Lint.run ~passes:[ V.Lint_passes.threat_traceability () ] Lint.default_config db
  in
  let untraced = only Diagnostic.Threat_untraced diags in
  Alcotest.(check bool) "eps_deactivation orphaned" true
    (List.exists
       (fun (d : Diagnostic.t) -> d.asset = Some V.Names.eps)
       untraced);
  Alcotest.(check bool) "several rows orphaned" true (List.length untraced > 5);
  Alcotest.(check bool) "warning severity" true
    (List.for_all
       (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Warning)
       untraced)

let test_sp009_derived_policy_traces_all () =
  (* the policy derived from the full Table-I model must trace every row *)
  let model = V.Threat_catalog.model () in
  let db =
    Compile.compile_exn (Secpol_policy.Derive.model_to_policy model)
  in
  let diags =
    Lint.run ~passes:[ V.Lint_passes.threat_traceability () ] Lint.default_config db
  in
  Alcotest.(check (list string)) "every row traced" [] (codes diags)

let () =
  Alcotest.run "secpol_lint"
    [
      ( "diagnostics",
        [
          quick "stable codes" test_codes_stable;
          quick "ordering + worst" test_diagnostic_order;
        ] );
      ( "fixtures",
        [
          quick "SP001 conflict" test_sp001_conflict;
          quick "SP002 shadowed" test_sp002_shadowed;
          quick "SP003 coverage gap" test_sp003_coverage_gap;
          quick "SP003 partial coverage" test_sp003_partial_coverage;
          quick "rule_covers respects messages" test_rule_covers_respects_messages;
          quick "SP004 deny-overrides" test_sp004_unreachable_deny_overrides;
          quick "SP004 allow-overrides" test_sp004_unreachable_allow_overrides;
          quick "SP004 first-match" test_sp004_unreachable_first_match;
          quick "SP005 mode unknown" test_sp005_mode_unknown;
          quick "SP006 rate on deny" test_sp006_rate_on_deny;
          quick "SP007 rate ineffective" test_sp007_rate_ineffective;
          quick "clean policy" test_clean_policy_no_diagnostics;
          quick "registry" test_registry;
        ] );
      ( "json",
        [
          quick "value round trip" test_json_value_roundtrip;
          quick "rejects garbage" test_json_rejects_garbage;
          quick "diagnostic round trip" test_diagnostic_json_roundtrip;
        ] );
      ( "hpe-consistency",
        [
          quick "SP008 duplicate id" test_sp008_duplicate_id_mismatch;
          quick "SP008 strategy split" test_sp008_strategy_mismatch;
          quick "baseline is consistent" test_sp008_baseline_policy_consistent;
        ] );
      ( "threat-traceability",
        [
          quick "SP009 orphaned threat" test_sp009_orphaned_threat;
          quick "derived policy traces all" test_sp009_derived_policy_traces_all;
        ] );
    ]
