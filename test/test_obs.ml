(* Tests for the telemetry subsystem: counters, log-bucketed histograms,
   the event-trace ring, the registry and its JSON export. *)

module Obs = Secpol_obs
module Counter = Obs.Counter
module Histogram = Obs.Histogram
module Ring = Obs.Ring
module Registry = Obs.Registry
module Stats = Secpol_sim.Stats
module Json = Secpol_policy.Json
module Obs_json = Secpol_policy.Obs_json

let check = Alcotest.check

(* ---------- Counter ---------- *)

let test_counter_basic () =
  let c = Counter.create () in
  check Alcotest.int "zero" 0 (Counter.value c);
  Counter.incr c;
  Counter.incr c;
  Counter.add c 5;
  check Alcotest.int "accumulated" 7 (Counter.value c);
  Counter.reset c;
  check Alcotest.int "reset" 0 (Counter.value c);
  Alcotest.check_raises "negative add"
    (Invalid_argument "Counter.add: counters are monotonic") (fun () ->
      Counter.add c (-1))

(* ---------- Histogram ---------- *)

let test_histogram_basic () =
  let h = Histogram.create ~lo:1.0 ~ratio:2.0 ~buckets:8 () in
  check Alcotest.int "empty" 0 (Histogram.count h);
  List.iter (Histogram.observe h) [ 0.5; 1.5; 3.0; 100.0 ];
  check Alcotest.int "count" 4 (Histogram.count h);
  check Alcotest.(float 1e-9) "sum" 105.0 (Histogram.sum h);
  check Alcotest.(float 1e-9) "min" 0.5 (Histogram.min h);
  check Alcotest.(float 1e-9) "max" 100.0 (Histogram.max h);
  check Alcotest.int "no invalid" 0 (Histogram.invalid h)

let test_histogram_invalid () =
  let h = Histogram.create () in
  Histogram.observe h Float.nan;
  Histogram.observe h (-3.0);
  Histogram.observe h 2.0;
  check Alcotest.int "count excludes invalid" 1 (Histogram.count h);
  check Alcotest.int "invalid tallied" 2 (Histogram.invalid h);
  check Alcotest.(float 1e-9) "min unaffected" 2.0 (Histogram.min h)

let test_histogram_percentile_edges () =
  let h = Histogram.create ~lo:1.0 ~ratio:2.0 ~buckets:8 () in
  List.iter (Histogram.observe h) [ 0.7; 3.0; 9.0 ];
  (* exact extrema at the edges, bucket bounds in between *)
  check Alcotest.(float 1e-9) "p0 = min" 0.7 (Histogram.percentile h 0.0);
  check Alcotest.(float 1e-9) "p100 = max" 9.0 (Histogram.percentile h 100.0);
  let p50 = Histogram.percentile h 50.0 in
  Alcotest.(check bool) "p50 within range" true (p50 >= 0.7 && p50 <= 9.0);
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Histogram.percentile: empty histogram") (fun () ->
      ignore (Histogram.percentile (Histogram.create ()) 50.0))

(* A log-bucketed percentile can overshoot the true value by at most the
   bucket ratio: compare against the exact Stats implementation. *)
let test_histogram_percentile_vs_exact () =
  let ratio = 2.0 in
  let h = Histogram.create ~lo:1.0 ~ratio ~buckets:32 () in
  let s = Stats.create () in
  let seed = ref 123456789 in
  for _ = 1 to 5_000 do
    (* deterministic pseudo-random latencies spanning several decades *)
    seed := (!seed * 1103515245) + 12345;
    let u = float_of_int (abs !seed mod 1_000_000) /. 1_000_000.0 in
    let x = 10.0 ** (4.0 *. u) in
    Histogram.observe h x;
    Stats.add s x
  done;
  List.iter
    (fun p ->
      let approx = Histogram.percentile h p in
      let exact = Stats.percentile s p in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f: %.2f within a bucket of exact %.2f" p approx
           exact)
        true
        (approx >= exact /. ratio && approx <= exact *. ratio))
    [ 50.0; 90.0; 99.0 ]

let test_histogram_merge () =
  let mk () = Histogram.create ~lo:1.0 ~ratio:2.0 ~buckets:16 () in
  let a = mk () and b = mk () in
  let all = mk () in
  let xs_a = [ 0.5; 2.0; 7.0; 100.0 ] and xs_b = [ 3.0; 3.5; 900.0 ] in
  List.iter (Histogram.observe a) xs_a;
  List.iter (Histogram.observe b) xs_b;
  List.iter (Histogram.observe all) (xs_a @ xs_b);
  let m = Histogram.merge a b in
  check Alcotest.int "count" (Histogram.count all) (Histogram.count m);
  check Alcotest.(float 1e-9) "sum" (Histogram.sum all) (Histogram.sum m);
  check Alcotest.(float 1e-9) "min" (Histogram.min all) (Histogram.min m);
  check Alcotest.(float 1e-9) "max" (Histogram.max all) (Histogram.max m);
  (* merged percentiles agree exactly with observing everything in one
     histogram: same buckets, same counts *)
  List.iter
    (fun p ->
      check
        Alcotest.(float 1e-9)
        (Printf.sprintf "p%.0f" p)
        (Histogram.percentile all p)
        (Histogram.percentile m p))
    [ 0.0; 25.0; 50.0; 90.0; 99.0; 100.0 ];
  Alcotest.check_raises "incompatible layouts"
    (Invalid_argument "Histogram.merge: incompatible bucket layouts")
    (fun () ->
      ignore (Histogram.merge a (Histogram.create ~lo:1.0 ~ratio:3.0 ())))

let test_histogram_bounded_memory () =
  let h = Histogram.create ~buckets:16 () in
  let before = Obj.reachable_words (Obj.repr h) in
  for i = 1 to 100_000 do
    Histogram.observe h (float_of_int i)
  done;
  let after = Obj.reachable_words (Obj.repr h) in
  check Alcotest.int "no growth after 100k observations" before after

(* ---------- Ring trace ---------- *)

let test_ring_basic () =
  let r = Ring.create ~capacity:4 () in
  Ring.record r ~time:0.0 "a";
  Ring.record r ~time:1.0 "b";
  check Alcotest.int "length" 2 (Ring.length r);
  check Alcotest.(list string) "oldest first" [ "a"; "b" ]
    (List.map (fun (e : Ring.event) -> e.name) (Ring.events r));
  check Alcotest.int "no drops yet" 0 (Ring.dropped r)

let test_ring_wraps () =
  let r = Ring.create ~capacity:3 () in
  List.iteri
    (fun i n -> Ring.record r ~time:(float_of_int i) n)
    [ "a"; "b"; "c"; "d"; "e" ];
  check Alcotest.int "capped" 3 (Ring.length r);
  check Alcotest.int "dropped" 2 (Ring.dropped r);
  check Alcotest.(list string) "keeps the newest" [ "c"; "d"; "e" ]
    (List.map (fun (e : Ring.event) -> e.name) (Ring.events r));
  let seqs = List.map (fun (e : Ring.event) -> e.seq) (Ring.events r) in
  check Alcotest.(list int) "monotonic seq" [ 2; 3; 4 ] seqs

let test_ring_spans () =
  let r = Ring.create ~capacity:8 () in
  let s1 = Ring.span_begin r ~time:0.0 "load" in
  let s2 = Ring.span_begin r ~time:0.1 "decide" in
  Ring.span_end r ~time:0.2 s2 "decide";
  Ring.span_end r ~time:0.3 s1 "load";
  Alcotest.(check bool) "distinct span ids" true (s1 <> s2);
  match Ring.events r with
  | [ b1; b2; e2; e1 ] ->
      check Alcotest.int "begin carries id" s1 b1.Ring.span;
      check Alcotest.int "end matches begin" s2 e2.Ring.span;
      Alcotest.(check bool) "kinds" true
        (b2.Ring.kind = Ring.Span_begin && e1.Ring.kind = Ring.Span_end)
  | es -> Alcotest.failf "expected 4 events, got %d" (List.length es)

(* ---------- Registry ---------- *)

let test_registry_find_or_create () =
  let reg = Registry.create () in
  let c = Registry.counter reg "x.count" in
  Counter.incr c;
  Alcotest.(check bool) "same instance" true (c == Registry.counter reg "x.count");
  let h = Registry.histogram reg "x.lat" in
  Alcotest.(check bool) "same histogram" true (h == Registry.histogram reg "x.lat");
  Registry.register_gauge reg "x.g" (fun () -> 42.0);
  check
    Alcotest.(list (pair string (float 0.0)))
    "gauges sampled" [ ("x.g", 42.0) ] (Registry.gauges reg);
  check Alcotest.(list string) "sorted counters" [ "x.count" ]
    (List.map fst (Registry.counters reg))

let test_registry_clock () =
  let t = ref 5.0 in
  let reg = Registry.create ~clock:(fun () -> !t) () in
  check Alcotest.(float 0.0) "injected clock" 5.0 (Registry.now reg)

let test_registry_merge_into () =
  let into = Registry.create () in
  Counter.add (Registry.counter into "shared.count") 2;
  let src = Registry.create () in
  Counter.add (Registry.counter src "shared.count") 3;
  Counter.add (Registry.counter src "src.only") 1;
  ignore (Registry.counter src "src.zero");
  let h = Registry.histogram src "src.lat" in
  List.iter (Histogram.observe h) [ 1.0; 2.0 ];
  Registry.merge_into ~into src;
  check
    Alcotest.(list (pair string int))
    "counters summed, zero-valued names kept"
    [ ("shared.count", 5); ("src.only", 1); ("src.zero", 0) ]
    (List.map
       (fun (n, c) -> (n, Counter.value c))
       (Registry.counters into));
  (* the merged histogram is a copy: the source stays independent *)
  let merged = Registry.histogram into "src.lat" in
  check Alcotest.int "histogram merged" 2 (Histogram.count merged);
  Histogram.observe h 3.0;
  check Alcotest.int "source writes stay out of the merge" 2
    (Histogram.count merged);
  (* merging again folds the new state in *)
  Registry.merge_into ~into src;
  check Alcotest.int "second merge accumulates" 5
    (Histogram.count (Registry.histogram into "src.lat"))

let test_registry_merge_layout_mismatch () =
  let into = Registry.create () in
  ignore (Registry.histogram ~lo:1.0 ~ratio:2.0 ~buckets:8 into "h");
  let src = Registry.create () in
  ignore (Registry.histogram ~lo:1.0 ~ratio:2.0 ~buckets:16 src "h");
  match Registry.merge_into ~into src with
  | () -> Alcotest.fail "merged histograms with different layouts"
  | exception Invalid_argument _ -> ()

(* ---------- JSON round trip ---------- *)

let test_export_json_round_trip () =
  let reg = Registry.create ~clock:(fun () -> 1.5) () in
  Counter.add (Registry.counter reg "layer.hits") 3;
  let h = Registry.histogram ~lo:1.0 ~ratio:2.0 ~buckets:8 reg "layer.lat" in
  List.iter (Histogram.observe h) [ 1.0; 2.0; 4.0; 8.0; 1000.0 ];
  Registry.register_gauge reg "layer.load" (fun () -> 0.25);
  ignore (Ring.span_begin (Registry.trace reg) ~time:1.0 "op");
  let text = Obs_json.to_string reg in
  match Json.of_string text with
  | Error e -> Alcotest.failf "emitted JSON does not parse: %s" e
  | Ok json ->
      let member path =
        List.fold_left
          (fun acc k -> Option.bind acc (Json.member k))
          (Some json) path
      in
      check
        Alcotest.(option int)
        "counter survives" (Some 3)
        (Option.bind (member [ "counters"; "layer.hits" ]) Json.to_int);
      check
        Alcotest.(option int)
        "histogram count survives" (Some 5)
        (Option.bind (member [ "histograms"; "layer.lat"; "count" ]) Json.to_int);
      Alcotest.(check bool) "p99 present" true
        (member [ "histograms"; "layer.lat"; "p99" ] <> None);
      Alcotest.(check bool) "gauge present" true
        (member [ "gauges"; "layer.load" ] <> None);
      check
        Alcotest.(option int)
        "trace event survives" (Some 1)
        (Option.map List.length
           (Option.bind (member [ "trace"; "events" ]) Json.to_list))

let test_export_non_finite_is_null () =
  (* gauges can legitimately return inf/NaN; the export must stay valid *)
  let reg = Registry.create () in
  Registry.register_gauge reg "bad.inf" (fun () -> infinity);
  Registry.register_gauge reg "bad.nan" (fun () -> Float.nan);
  match Json.of_string (Obs_json.to_string reg) with
  | Error e -> Alcotest.failf "emitted JSON does not parse: %s" e
  | Ok json ->
      Alcotest.(check bool) "inf exported as null" true
        (Option.bind (Json.member "gauges" json) (Json.member "bad.inf")
        = Some Json.Null)

let quick name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "secpol_obs"
    [
      ("counter", [ quick "basics" test_counter_basic ]);
      ( "histogram",
        [
          quick "basics" test_histogram_basic;
          quick "invalid observations" test_histogram_invalid;
          quick "percentile edges" test_histogram_percentile_edges;
          quick "percentile vs exact" test_histogram_percentile_vs_exact;
          quick "merge" test_histogram_merge;
          quick "bounded memory" test_histogram_bounded_memory;
        ] );
      ( "ring",
        [
          quick "basics" test_ring_basic;
          quick "wraps" test_ring_wraps;
          quick "spans" test_ring_spans;
        ] );
      ( "registry",
        [
          quick "find or create" test_registry_find_or_create;
          quick "injected clock" test_registry_clock;
          quick "merge_into" test_registry_merge_into;
          quick "merge layout mismatch" test_registry_merge_layout_mismatch;
        ] );
      ( "export",
        [
          quick "JSON round trip" test_export_json_round_trip;
          quick "non-finite gauges" test_export_non_finite_is_null;
        ] );
    ]
