(* Tests for the shard-per-domain parallel layer: partitioning, sharded
   decision serving, sharded HPE frame gating, and the property that every
   sharded run is observably identical to the sequential engine. *)

module Ast = Secpol_policy.Ast
module Ir = Secpol_policy.Ir
module Compile = Secpol_policy.Compile
module Engine = Secpol_policy.Engine
module Partition = Secpol_par.Partition
module Serve = Secpol_par.Serve
module Frame_gate = Secpol_par.Frame_gate
module Config = Secpol_hpe.Config
module Identifier = Secpol_can.Identifier
module Registry = Secpol_obs.Registry
module Counter = Secpol_obs.Counter
module Histogram = Secpol_obs.Histogram
module Clock = Secpol_obs.Clock

let check = Alcotest.check

let quick name f = Alcotest.test_case name `Quick f

(* ---------- Partitioner ---------- *)

let test_fnv_pins () =
  (* published FNV-1a 32-bit vectors: the shard assignment is a contract,
     so the hash must never drift *)
  check Alcotest.int "offset basis" 0x811c9dc5 (Partition.hash_string "");
  check Alcotest.int "fnv(a)" 0xe40c292c (Partition.hash_string "a");
  check Alcotest.int "fnv(foobar)" 0xbf9cf968 (Partition.hash_string "foobar")

let test_assign_partitions () =
  let items = Array.init 100 (fun i -> Printf.sprintf "item%d" i) in
  let shards = Partition.assign_by ~shards:4 Fun.id items in
  check Alcotest.int "4 shards" 4 (Array.length shards);
  let seen = Array.make 100 false in
  Array.iteri
    (fun s idxs ->
      Array.iter
        (fun i ->
          Alcotest.(check bool) "no duplicate routing" false seen.(i);
          seen.(i) <- true;
          check Alcotest.int "routed by hash" s
            (Partition.shard_of_string ~shards:4 items.(i)))
        idxs;
      let l = Array.to_list idxs in
      Alcotest.(check bool) "input order preserved" true
        (List.sort compare l = l))
    shards;
  Alcotest.(check bool) "every item owned" true (Array.for_all Fun.id seen)

let test_assign_validates () =
  Alcotest.check_raises "shards < 1"
    (Invalid_argument "Partition.assign_by: shards < 1") (fun () ->
      ignore (Partition.assign_by ~shards:0 Fun.id [| "a" |]))

(* ---------- Sharded serving vs the sequential engine ---------- *)

let registry_counters r =
  List.map (fun (name, c) -> (name, Counter.value c)) (Registry.counters r)

let registry_histogram_counts r =
  List.map (fun (name, h) -> (name, Histogram.count h)) (Registry.histograms r)

let same_as_sequential ?strategy db work =
  let seq = Serve.run_sequential ?strategy db work in
  List.for_all
    (fun key ->
      List.for_all
        (fun domains ->
          let par = Serve.run ~domains ~key ?strategy db work in
          par.Serve.outcomes = seq.Serve.outcomes
          && par.Serve.stats.engine = seq.Serve.stats.engine
          && registry_counters par.Serve.registry
             = registry_counters seq.Serve.registry
          && registry_histogram_counts par.Serve.registry
             = registry_histogram_counts seq.Serve.registry)
        [ 1; 2; 4 ])
    [ Partition.Subject; Partition.Asset ]

let rated_source =
  "policy \"p\" version 1 { default deny; asset lock { allow write from any \
   rate 2 per 1000; } asset telemetry { allow read from any; deny write \
   from infotainment; } }"

let compile_ok src =
  match Compile.of_source src with Ok db -> db | Error e -> failwith e

let test_serve_matches_sequential () =
  let db = compile_ok rated_source in
  let subjects = [ "alice"; "bob"; "carol"; "infotainment"; "dave" ] in
  let work =
    Array.init 400 (fun k ->
        let subject = List.nth subjects (k mod 5) in
        let asset = if k mod 3 = 0 then "telemetry" else "lock" in
        let op = if k mod 3 = 0 then Ir.Read else Ir.Write in
        ( float_of_int k *. 0.01,
          { Ir.mode = "normal"; subject; asset; op; msg_id = None } ))
  in
  Alcotest.(check bool)
    "sharded runs identical to the sequential engine (rates, caches, \
     telemetry)"
    true
    (same_as_sequential db work)

let test_serve_stats_shape () =
  let db = compile_ok rated_source in
  let work =
    Array.init 50 (fun k ->
        ( float_of_int k,
          {
            Ir.mode = "normal";
            subject = Printf.sprintf "s%d" (k mod 7);
            asset = "lock";
            op = Ir.Write;
            msg_id = None;
          } ))
  in
  let r = Serve.run ~domains:3 db work in
  check Alcotest.int "domains" 3 r.Serve.stats.domains;
  check Alcotest.int "served" 50 r.Serve.stats.served;
  check Alcotest.int "one slice per shard" 3
    (Array.length r.Serve.stats.per_shard);
  check Alcotest.int "per-shard counts sum to served" 50
    (Array.fold_left ( + ) 0 r.Serve.stats.per_shard);
  check Alcotest.int "every request decided" 50
    r.Serve.stats.engine.Engine.decisions

(* The timed region must start only after every domain is running:
   [Domain.spawn] costs ~ms per domain, and billing startup as serving
   time made the measured region scale with the domain count.  The
   observable contract: the wall time of a [Serve.run] call spent
   OUTSIDE the reported [elapsed_s] must at least cover the cost of
   spawning the domains.  Before the barrier fix that gap was only the
   policy compile + partition (microseconds), so the assertion bites. *)
let test_serve_excludes_spawn_overhead () =
  let db = compile_ok rated_source in
  let domains = 8 in
  let work =
    Array.init domains (fun k ->
        ( float_of_int k,
          {
            Ir.mode = "normal";
            subject = Printf.sprintf "s%d" k;
            asset = "lock";
            op = Ir.Write;
            msg_id = None;
          } ))
  in
  let min_of n f =
    let best = ref infinity in
    for _ = 1 to n do
      best := Float.min !best (f ())
    done;
    !best
  in
  (* startup cost: spawn [domains] domains and wait until all are
     running — exactly the phase the start barrier keeps off the clock.
     Joins happen outside the measurement. *)
  let spawn_cost =
    min_of 5 (fun () ->
        let mu = Mutex.create () in
        let cv = Condition.create () in
        let ready = ref 0 in
        let go = ref false in
        let t0 = Clock.now () in
        let ds =
          Array.init domains (fun _ ->
              Domain.spawn (fun () ->
                  Mutex.lock mu;
                  incr ready;
                  if !ready = domains then Condition.broadcast cv;
                  while not !go do
                    Condition.wait cv mu
                  done;
                  Mutex.unlock mu))
        in
        Mutex.lock mu;
        while !ready < domains do
          Condition.wait cv mu
        done;
        let dt = Clock.now () -. t0 in
        go := true;
        Condition.broadcast cv;
        Mutex.unlock mu;
        Array.iter Domain.join ds;
        dt)
  in
  let outside =
    min_of 10 (fun () ->
        let t0 = Clock.now () in
        let r = Serve.run ~domains db work in
        Clock.now () -. t0 -. r.Serve.stats.elapsed_s)
  in
  check Alcotest.bool
    (Printf.sprintf
       "time outside the measured region (%.6fs) covers spawn cost (%.6fs)"
       outside spawn_cost)
    true
    (outside >= 0.5 *. spawn_cost)

(* A run faster than the clock can measure must clamp to the clock's
   resolution, not report a zero or infinite throughput. *)
let test_serve_throughput_clamped () =
  let db = compile_ok rated_source in
  let work =
    [|
      ( 0.,
        {
          Ir.mode = "normal";
          subject = "alice";
          asset = "lock";
          op = Ir.Write;
          msg_id = None;
        } );
    |]
  in
  let r = Serve.run_sequential db work in
  check Alcotest.bool "elapsed at least clock resolution" true
    (r.Serve.stats.elapsed_s >= Clock.resolution);
  check Alcotest.bool "throughput positive and finite" true
    (r.Serve.stats.throughput > 0.
    && Float.is_finite r.Serve.stats.throughput);
  let b = Serve.run_batch_sequential db work in
  check Alcotest.bool "batched throughput positive and finite" true
    (b.Serve.stats.throughput > 0.
    && Float.is_finite b.Serve.stats.throughput)

let test_serve_validates_domains () =
  let db = compile_ok rated_source in
  Alcotest.check_raises "domains < 1"
    (Invalid_argument "Serve.run: domains < 1") (fun () ->
      ignore (Serve.run ~domains:0 db [||]))

(* The batched server must scatter exactly the decisions the scalar
   sharded run produces — same rate consumption per shard, same input
   order — at every domain count and partition key. *)
let test_serve_batch_matches_run () =
  let db = compile_ok rated_source in
  let subjects = [ "alice"; "bob"; "carol"; "infotainment"; "dave" ] in
  let work =
    Array.init 400 (fun k ->
        let subject = List.nth subjects (k mod 5) in
        let asset = if k mod 3 = 0 then "telemetry" else "lock" in
        let op = if k mod 3 = 0 then Ir.Read else Ir.Write in
        ( float_of_int k *. 0.01,
          { Ir.mode = "normal"; subject; asset; op; msg_id = None } ))
  in
  let seq = Serve.run_batch_sequential db work in
  let scalar = Serve.run_sequential db work in
  Alcotest.(check bool) "sequential batch = sequential scalar decisions" true
    (Array.to_list seq.Serve.decisions
    = List.map
        (fun (o : Secpol_policy.Engine.outcome) -> o.decision)
        (Array.to_list scalar.Serve.outcomes));
  List.iter
    (fun key ->
      List.iter
        (fun domains ->
          let par = Serve.run_batch ~domains ~key db work in
          Alcotest.(check bool)
            (Printf.sprintf "batched %d-domain run = sequential (%s)" domains
               (match key with
               | Partition.Subject -> "subject"
               | Partition.Asset -> "asset"))
            true
            (par.Serve.decisions = seq.Serve.decisions))
        [ 1; 2; 4 ])
    [ Partition.Subject; Partition.Asset ]

(* ---------- Random policies: the qcheck determinism harness ---------- *)

let keywords =
  [
    "policy"; "version"; "mode"; "asset"; "default"; "allow"; "deny"; "read";
    "write"; "rw"; "from"; "messages"; "rate"; "per"; "any";
  ]

let ident_gen =
  QCheck.Gen.(
    map
      (fun (c, rest) ->
        let word =
          String.make 1 c ^ String.concat "" (List.map (String.make 1) rest)
        in
        if List.mem word keywords then word ^ "_x" else word)
      (pair (char_range 'a' 'z') (small_list (char_range 'a' 'z'))))

let rule_gen =
  QCheck.Gen.(
    let* decision = oneofl [ Ast.Allow; Ast.Deny ] in
    let* op = oneofl [ Ast.Read; Ast.Write; Ast.Rw ] in
    let* subjects =
      oneof
        [
          return Ast.Any_subject;
          map (fun l -> Ast.Subjects l) (list_size (1 -- 3) ident_gen);
        ]
    in
    let* messages =
      oneof
        [
          return None;
          map
            (fun ids ->
              Some
                (List.map (fun (lo, extra) -> Ast.range lo (lo + extra)) ids))
            (list_size (1 -- 2) (pair (0 -- 50) (0 -- 10)));
        ]
    in
    let* rate =
      if decision = Ast.Deny then return None
      else
        oneof
          [
            return None;
            map
              (fun (count, window_ms) -> Some (Ast.rate_limit ~count ~window_ms))
              (pair (1 -- 5) (1 -- 2_000));
          ]
    in
    return { Ast.decision; op; subjects; messages; rate })

let policy_gen =
  QCheck.Gen.(
    let block_gen =
      let* asset = ident_gen in
      let* rules = list_size (1 -- 3) rule_gen in
      return { Ast.asset; rules }
    in
    let section_gen =
      oneof
        [
          map (fun b -> Ast.Global b) block_gen;
          (let* modes = list_size (1 -- 2) ident_gen in
           let* blocks = list_size (1 -- 2) block_gen in
           return (Ast.Modes (modes, blocks)));
        ]
    in
    let* name = ident_gen in
    let* version = 0 -- 100 in
    let* default =
      oneofl [ []; [ Ast.Default Ast.Deny ]; [ Ast.Default Ast.Allow ] ]
    in
    let* sections = list_size (1 -- 3) section_gen in
    return { Ast.name; version; sections = default @ sections })

(* requests relevant to a database: its assets and subjects plus strangers,
   probed at advancing clocks so rate budgets go through grant, exhaustion
   and window expiry *)
let work_for (db : Ir.db) =
  let assets = "stranger_asset" :: Ir.assets db in
  let subjects = "stranger_subject" :: Ir.subjects db in
  let reqs =
    List.concat_map
      (fun asset ->
        List.concat_map
          (fun subject ->
            List.concat_map
              (fun op ->
                [
                  { Ir.mode = "normal"; subject; asset; op; msg_id = None };
                  { Ir.mode = "normal"; subject; asset; op; msg_id = Some 5 };
                ])
              [ Ir.Read; Ir.Write ])
          subjects)
      assets
  in
  Array.of_list
    (List.concat_map
       (fun now -> List.map (fun r -> (now, r)) reqs)
       [ 0.0; 0.0; 0.001; 0.5; 20.0 ])

let prop_sharded_equals_sequential =
  QCheck.Test.make
    ~name:
      "sharded runs = sequential engine on random policies (decisions, \
       stats, merged telemetry)"
    ~count:30 (QCheck.make policy_gen) (fun p ->
      match Compile.compile p with
      | Error _ -> QCheck.assume_fail ()
      | Ok (db, _) -> same_as_sequential db (work_for db))

(* ---------- Sharded frame gating ---------- *)

let rate count window_ms = Ast.rate_limit ~count ~window_ms

let gate_configs =
  [
    ( "alpha",
      Config.make
        ~write_rates:[ (0x10, rate 1 1000) ]
        ~own_ids:[ 0x20 ] ~read_ids:[ 0x30; 0x31 ] ~write_ids:[ 0x10 ] () );
    ( "beta",
      Config.make ~own_ids:[ 0x30 ] ~read_ids:[ 0x10; 0x20 ]
        ~write_ids:[ 0x30; 0x31 ] () );
  ]

let gate_events =
  (* interleaved traffic for two guarded nodes and one unguarded alien;
     alpha's writes exceed their budget, both nodes see a spoof attempt *)
  let e time node dir id =
    { Frame_gate.time; node; dir; id = Identifier.standard id }
  in
  [|
    e 0.0 "alpha" Frame_gate.Tx 0x10;
    e 0.1 "beta" Frame_gate.Tx 0x30;
    e 0.2 "alpha" Frame_gate.Tx 0x10;
    e 0.3 "beta" Frame_gate.Rx 0x10;
    e 0.4 "alpha" Frame_gate.Rx 0x20;
    e 0.5 "alien" Frame_gate.Tx 0x7f;
    e 0.6 "beta" Frame_gate.Rx 0x30;
    e 0.7 "alpha" Frame_gate.Rx 0x30;
    e 0.8 "beta" Frame_gate.Tx 0x31;
    e 0.9 "alpha" Frame_gate.Tx 0x55;
    e 1.3 "alpha" Frame_gate.Tx 0x10;
  |]

let test_frame_gate_verdicts () =
  let r = Frame_gate.run_sequential gate_configs gate_events in
  let expect =
    [|
      Frame_gate.Grant (* alpha write within budget *);
      Frame_gate.Grant (* beta writes its own id *);
      Frame_gate.Rate_block (* alpha's budget is spent *);
      Frame_gate.Grant (* beta reads 0x10 *);
      Frame_gate.Block (* 0x20 is alpha's own id: spoof *);
      Frame_gate.Grant (* alien node is unguarded *);
      Frame_gate.Block (* 0x30 is beta's own id: spoof *);
      Frame_gate.Grant (* alpha reads 0x30 *);
      Frame_gate.Grant (* beta writes 0x31 *);
      Frame_gate.Block (* 0x55 not write-approved for alpha *);
      Frame_gate.Grant (* alpha's grant at 0.0 expired at 1.0 *);
    |]
  in
  Alcotest.(check bool) "verdict sequence" true (r.Frame_gate.verdicts = expect);
  check Alcotest.int "granted" 7 r.Frame_gate.stats.granted;
  check Alcotest.int "blocked" 3 r.Frame_gate.stats.blocked;
  check Alcotest.int "rate blocked" 1 r.Frame_gate.stats.rate_blocked

let test_frame_gate_matches_sequential () =
  let seq = Frame_gate.run_sequential gate_configs gate_events in
  List.iter
    (fun domains ->
      let par = Frame_gate.run ~domains gate_configs gate_events in
      Alcotest.(check bool)
        (Printf.sprintf "%d-domain verdicts" domains)
        true
        (par.Frame_gate.verdicts = seq.Frame_gate.verdicts);
      Alcotest.(check bool)
        (Printf.sprintf "%d-domain merged counters" domains)
        true
        (registry_counters par.Frame_gate.registry
        = registry_counters seq.Frame_gate.registry))
    [ 1; 2; 4 ]

let () =
  Alcotest.run "par"
    [
      ( "partition",
        [
          quick "fnv-1a pins" test_fnv_pins;
          quick "assign covers and preserves order" test_assign_partitions;
          quick "validation" test_assign_validates;
        ] );
      ( "serve",
        [
          quick "matches sequential (rated policy)" test_serve_matches_sequential;
          quick "stats shape" test_serve_stats_shape;
          quick "spawn cost outside timed region"
            test_serve_excludes_spawn_overhead;
          quick "throughput clamped at clock resolution"
            test_serve_throughput_clamped;
          quick "validation" test_serve_validates_domains;
          quick "batched run matches scalar run" test_serve_batch_matches_run;
          QCheck_alcotest.to_alcotest prop_sharded_equals_sequential;
        ] );
      ( "frame gate",
        [
          quick "verdicts" test_frame_gate_verdicts;
          quick "matches sequential" test_frame_gate_matches_sequential;
        ] );
    ]
