(* Tests for the policy DSL: lexer, parser, printer, compiler, engine,
   conflict analysis, derivation, updates and audit. *)

module Ast = Secpol_policy.Ast
module Lexer = Secpol_policy.Lexer
module Parser = Secpol_policy.Parser
module Printer = Secpol_policy.Printer
module Compile = Secpol_policy.Compile
module Ir = Secpol_policy.Ir
module Engine = Secpol_policy.Engine
module Conflict = Secpol_policy.Conflict
module Derive = Secpol_policy.Derive
module Update = Secpol_policy.Update
module Audit = Secpol_policy.Audit
module Threat = Secpol_threat.Threat

let check = Alcotest.check

let quick name f = Alcotest.test_case name `Quick f

let sample_source =
  {|
# EV-ECU protection, per the connected-car case study
policy "ev_ecu_protection" version 2 {
  default deny;
  mode normal, fail_safe {
    asset ev_ecu {
      allow read from sensors, door_locks;
      deny  write from infotainment;
      allow write from safety messages 0x100..0x10f, 0x200;
    }
  }
  asset engine {
    allow read from any;
  }
}
|}

let parse_ok src =
  match Parser.parse src with
  | Ok p -> p
  | Error e -> Alcotest.fail ("parse failed: " ^ e)

let compile_ok ?known_modes ?known_assets ?known_subjects src =
  match Compile.compile ?known_modes ?known_assets ?known_subjects (parse_ok src) with
  | Ok (db, _) -> db
  | Error issues ->
      Alcotest.fail
        ("compile failed: "
        ^ String.concat "; "
            (List.map (fun (i : Compile.issue) -> i.message) issues))

(* ---------- Lexer ---------- *)

let token_kinds src =
  List.map fst (Lexer.tokenize src)

let test_lexer_basic () =
  check Alcotest.int "token count" 7
    (List.length (Lexer.tokenize "policy \"x\" version 1 { }"));
  match token_kinds "allow read from any;" with
  | [ Lexer.ALLOW; Lexer.READ; Lexer.FROM; Lexer.ANY; Lexer.SEMI; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "unexpected tokens"

let test_lexer_numbers () =
  (match token_kinds "0x10f 256" with
  | [ Lexer.INT 0x10f; Lexer.INT 256; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "numbers mis-lexed");
  Alcotest.check_raises "hex without digits"
    (Lexer.Lex_error ("hex literal with no digits", { Lexer.line = 1; column = 1 }))
    (fun () -> ignore (Lexer.tokenize "0x"))

let test_lexer_comments () =
  match token_kinds "# comment line\nallow // trailing\nread" with
  | [ Lexer.ALLOW; Lexer.READ; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "comments not skipped"

let test_lexer_strings () =
  (match token_kinds {|"hello \"world\""|} with
  | [ Lexer.STRING s; Lexer.EOF ] ->
      check Alcotest.string "escapes" {|hello "world"|} s
  | _ -> Alcotest.fail "string mis-lexed");
  match Lexer.tokenize "\"unterminated" with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "accepted unterminated string"

let test_lexer_dotdot () =
  (match token_kinds "1..5" with
  | [ Lexer.INT 1; Lexer.DOTDOT; Lexer.INT 5; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "range mis-lexed");
  match Lexer.tokenize "1.5" with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "accepted single dot"

let test_lexer_positions () =
  match Lexer.tokenize "allow\n  deny" with
  | [ (_, p1); (_, p2); _ ] ->
      check Alcotest.int "line 1" 1 p1.Lexer.line;
      check Alcotest.int "line 2" 2 p2.Lexer.line;
      check Alcotest.int "column 3" 3 p2.Lexer.column
  | _ -> Alcotest.fail "unexpected token count"

let test_lexer_illegal_char () =
  match Lexer.tokenize "allow @" with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "accepted '@'"

(* ---------- Parser ---------- *)

let test_parse_sample () =
  let p = parse_ok sample_source in
  check Alcotest.string "name" "ev_ecu_protection" p.Ast.name;
  check Alcotest.int "version" 2 p.Ast.version;
  check Alcotest.int "sections" 3 (List.length p.Ast.sections)

let test_parse_errors () =
  let bad =
    [
      "policy missing_quotes version 1 { }";
      "policy \"x\" version { }";
      "policy \"x\" version 1 { asset a { allow bogus from any; } }";
      "policy \"x\" version 1 { asset a { allow read any; } }";
      "policy \"x\" version 1 { asset a { allow read from any } }";
      "policy \"x\" version 1 { asset a { allow read from any; } ";
      "policy \"x\" version 1 { } trailing";
    ]
  in
  List.iter
    (fun src ->
      match Parser.parse src with
      | Ok _ -> Alcotest.fail ("accepted: " ^ src)
      | Error e ->
          Alcotest.(check bool) "error has position" true
            (String.length e > 0 && String.sub e 0 4 = "line"))
    bad

let test_parse_empty_range_rejected () =
  match
    Parser.parse
      "policy \"x\" version 1 { asset a { allow read from any messages 5..2; } }"
  with
  | Ok _ -> Alcotest.fail "accepted empty range"
  | Error _ -> ()

let test_parse_many () =
  let two = "policy \"a\" version 1 { }\npolicy \"b\" version 2 { }" in
  match Parser.parse_many two with
  | Ok [ a; b ] ->
      check Alcotest.string "first" "a" a.Ast.name;
      check Alcotest.string "second" "b" b.Ast.name
  | Ok _ -> Alcotest.fail "wrong count"
  | Error e -> Alcotest.fail e

(* ---------- Printer round trip ---------- *)

let test_print_parse_roundtrip () =
  let p = parse_ok sample_source in
  let printed = Printer.to_string p in
  let p' = parse_ok printed in
  Alcotest.(check bool) "round trip equal" true (Ast.equal p p')

let keywords =
  [
    "policy"; "version"; "mode"; "asset"; "default"; "allow"; "deny"; "read";
    "write"; "rw"; "from"; "messages"; "rate"; "per"; "any";
  ]

let ident_gen =
  QCheck.Gen.(
    map
      (fun (c, rest) ->
        let word =
          String.make 1 c ^ String.concat "" (List.map (String.make 1) rest)
        in
        if List.mem word keywords then word ^ "_x" else word)
      (pair (char_range 'a' 'z') (small_list (char_range 'a' 'z'))))

let rule_gen =
  QCheck.Gen.(
    let* decision = oneofl [ Ast.Allow; Ast.Deny ] in
    let* op = oneofl [ Ast.Read; Ast.Write; Ast.Rw ] in
    let* subjects =
      oneof
        [
          return Ast.Any_subject;
          map (fun l -> Ast.Subjects l) (list_size (1 -- 4) ident_gen);
        ]
    in
    let* messages =
      oneof
        [
          return None;
          map
            (fun ids ->
              Some
                (List.map
                   (fun (lo, extra) -> Ast.range lo (lo + extra))
                   ids))
            (list_size (1 -- 3) (pair (0 -- 100) (0 -- 10)));
        ]
    in
    let* rate =
      if decision = Ast.Deny then return None
      else
        oneof
          [
            return None;
            map
              (fun (count, window_ms) ->
                Some (Ast.rate_limit ~count ~window_ms))
              (pair (1 -- 100) (1 -- 10_000));
          ]
    in
    return { Ast.decision; op; subjects; messages; rate })

let policy_gen =
  QCheck.Gen.(
    let block_gen =
      let* asset = ident_gen in
      let* rules = list_size (1 -- 4) rule_gen in
      return { Ast.asset; rules }
    in
    let section_gen =
      oneof
        [
          map (fun b -> Ast.Global b) block_gen;
          (let* modes = list_size (1 -- 3) ident_gen in
           let* blocks = list_size (1 -- 2) block_gen in
           return (Ast.Modes (modes, blocks)));
        ]
    in
    let* name = ident_gen in
    let* version = 0 -- 100 in
    let* default = oneofl [ []; [ Ast.Default Ast.Deny ]; [ Ast.Default Ast.Allow ] ] in
    let* sections = list_size (0 -- 4) section_gen in
    return { Ast.name; version; sections = default @ sections })

let prop_printer_roundtrip =
  QCheck.Test.make ~name:"printer/parser round trip on random policies"
    ~count:300 (QCheck.make policy_gen) (fun p ->
      match Parser.parse (Printer.to_string p) with
      | Ok p' -> Ast.normalise p = Ast.normalise p'
      | Error _ -> false)

let test_normalise_merges_ranges () =
  let r =
    {
      Ast.decision = Ast.Allow;
      op = Ast.Read;
      subjects = Ast.Any_subject;
      messages = Some [ Ast.range 5 10; Ast.range 8 12; Ast.range 13 20 ];
      rate = None;
    }
  in
  let p =
    Ast.normalise
      { Ast.name = "n"; version = 1; sections = [ Ast.Global { asset = "a"; rules = [ r ] } ] }
  in
  match p.Ast.sections with
  | [ Ast.Global { rules = [ { messages = Some [ m ]; _ } ]; _ } ] ->
      check Alcotest.int "merged lo" 5 m.Ast.lo;
      check Alcotest.int "merged hi" 20 m.Ast.hi
  | _ -> Alcotest.fail "ranges not merged"

let test_normalise_empty_subjects () =
  check Alcotest.bool "empty list becomes any" true
    (Ast.normalise_subjects (Ast.Subjects []) = Ast.Any_subject)

(* ---------- Compiler ---------- *)

let test_compile_sample () =
  let db = compile_ok sample_source in
  check Alcotest.int "version" 2 db.Ir.version;
  Alcotest.(check bool) "default deny" true (db.Ir.default = Ast.Deny);
  (* rw rules don't appear here; 3 rules in the mode section + 1 global *)
  check Alcotest.int "rule count" 4 (List.length db.Ir.rules);
  Alcotest.(check (list string)) "assets" [ "engine"; "ev_ecu" ] (Ir.assets db);
  Alcotest.(check (list string)) "subjects"
    [ "door_locks"; "infotainment"; "safety"; "sensors" ]
    (Ir.subjects db)

let test_compile_default_deny_when_absent () =
  let db = compile_ok "policy \"x\" version 1 { asset a { allow rw from any; } }" in
  Alcotest.(check bool) "fail closed" true (db.Ir.default = Ast.Deny);
  (* rw expands to both ops in one rule *)
  match db.Ir.rules with
  | [ r ] -> check Alcotest.int "two ops" 2 (List.length r.Ir.ops)
  | _ -> Alcotest.fail "expected one rule"

let test_compile_multiple_defaults_error () =
  match
    Compile.compile
      (parse_ok "policy \"x\" version 1 { default deny; default allow; }")
  with
  | Ok _ -> Alcotest.fail "accepted two defaults"
  | Error _ -> ()

let test_compile_empty_mode_section_error () =
  match Compile.compile (parse_ok "policy \"x\" version 1 { mode m { } }") with
  | Ok _ -> Alcotest.fail "accepted empty mode section"
  | Error _ -> ()

let test_compile_warnings () =
  match
    Compile.compile ~known_modes:[ "normal" ] ~known_assets:[ "ev_ecu" ]
      ~known_subjects:[ "sensors" ]
      (parse_ok
         "policy \"x\" version 1 { mode weird { asset unknown { allow read \
          from stranger; } } }")
  with
  | Error _ -> Alcotest.fail "warnings should not fail compilation"
  | Ok (_, issues) ->
      check Alcotest.int "three warnings" 3
        (List.length (List.filter (fun (i : Compile.issue) -> i.severity = `Warning) issues))

let test_compile_of_source_error_rendering () =
  match Compile.of_source "policy \"x\" version 1 {" with
  | Ok _ -> Alcotest.fail "accepted truncated source"
  | Error e -> Alcotest.(check bool) "positioned" true (String.sub e 0 4 = "line")

(* ---------- Engine ---------- *)

let request ?(mode = "normal") ?(subject = "sensors") ?(asset = "ev_ecu")
    ?(op = Ir.Read) ?msg_id () =
  { Ir.mode; subject; asset; op; msg_id }

let test_engine_allow_and_default () =
  let db = compile_ok sample_source in
  let e = Engine.create db in
  Alcotest.(check bool) "sensors read allowed" true
    (Engine.permitted e (request ()));
  Alcotest.(check bool) "unknown subject denied by default" false
    (Engine.permitted e (request ~subject:"stranger" ()));
  Alcotest.(check bool) "unknown asset denied by default" false
    (Engine.permitted e (request ~asset:"mystery" ()))

let test_engine_mode_scoping () =
  let db = compile_ok sample_source in
  let e = Engine.create db in
  Alcotest.(check bool) "allowed in fail_safe" true
    (Engine.permitted e (request ~mode:"fail_safe" ()));
  Alcotest.(check bool) "not allowed in remote_diagnostic" false
    (Engine.permitted e (request ~mode:"remote_diagnostic" ()))

let test_engine_message_scoping () =
  let db = compile_ok sample_source in
  let e = Engine.create db in
  let req msg_id =
    request ~subject:"safety" ~op:Ir.Write ?msg_id ()
  in
  Alcotest.(check bool) "in range" true
    (Engine.permitted e (req (Some 0x105)));
  Alcotest.(check bool) "single id" true (Engine.permitted e (req (Some 0x200)));
  Alcotest.(check bool) "out of range" false
    (Engine.permitted e (req (Some 0x300)));
  Alcotest.(check bool) "no msg id on message-scoped rule" false
    (Engine.permitted e (req None))

let test_engine_deny_overrides () =
  let src =
    "policy \"x\" version 1 { default deny; asset a { allow rw from any; deny \
     write from evil; } }"
  in
  let e = Engine.create (compile_ok src) in
  Alcotest.(check bool) "good write" true
    (Engine.permitted e (request ~subject:"good" ~asset:"a" ~op:Ir.Write ()));
  Alcotest.(check bool) "evil write denied" false
    (Engine.permitted e (request ~subject:"evil" ~asset:"a" ~op:Ir.Write ()));
  Alcotest.(check bool) "evil read still allowed" true
    (Engine.permitted e (request ~subject:"evil" ~asset:"a" ~op:Ir.Read ()))

let test_engine_first_match () =
  let src =
    "policy \"x\" version 1 { default deny; asset a { allow write from evil; \
     deny write from evil; } }"
  in
  let e = Engine.create ~strategy:Engine.First_match (compile_ok src) in
  Alcotest.(check bool) "first rule wins" true
    (Engine.permitted e (request ~subject:"evil" ~asset:"a" ~op:Ir.Write ()));
  let e' = Engine.create ~strategy:Engine.Deny_overrides (compile_ok src) in
  Alcotest.(check bool) "deny overrides disagrees" false
    (Engine.permitted e' (request ~subject:"evil" ~asset:"a" ~op:Ir.Write ()))

let test_engine_allow_overrides () =
  let src =
    "policy \"x\" version 1 { default deny; asset a { deny write from evil; \
     allow write from evil; } }"
  in
  let e = Engine.create ~strategy:Engine.Allow_overrides (compile_ok src) in
  Alcotest.(check bool) "allow overrides" true
    (Engine.permitted e (request ~subject:"evil" ~asset:"a" ~op:Ir.Write ()))

let test_engine_cache () =
  let e = Engine.create (compile_ok sample_source) in
  let r = request () in
  ignore (Engine.decide e r);
  let second = Engine.decide e r in
  Alcotest.(check bool) "second from cache" true second.Engine.from_cache;
  let stats = Engine.stats e in
  check Alcotest.int "one miss" 1 stats.Engine.cache_misses;
  check Alcotest.int "one hit" 1 stats.Engine.cache_hits

let test_engine_no_cache () =
  let e = Engine.create ~cache:false (compile_ok sample_source) in
  let r = request () in
  ignore (Engine.decide e r);
  let second = Engine.decide e r in
  Alcotest.(check bool) "never cached" false second.Engine.from_cache

let test_engine_swap_db () =
  let e = Engine.create (compile_ok sample_source) in
  let r = request () in
  Alcotest.(check bool) "allowed before" true (Engine.permitted e r);
  Engine.swap_db e (compile_ok "policy \"empty\" version 3 { default deny; }");
  Alcotest.(check bool) "denied after swap" false (Engine.permitted e r)

let test_engine_matched_rule_provenance () =
  let e = Engine.create (compile_ok sample_source) in
  match (Engine.decide e (request ())).Engine.matched with
  | Some rule ->
      check Alcotest.string "origin" "ev_ecu_protection v2" rule.Ir.origin
  | None -> Alcotest.fail "expected a matched rule"

(* ---------- Engine soundness properties ---------- *)

(* requests relevant to a database: its assets and subjects plus strangers *)
let requests_for (db : Ir.db) =
  let assets = "stranger_asset" :: Ir.assets db in
  let subjects = "stranger_subject" :: Ir.subjects db in
  let modes = [ "normal"; "other_mode" ] in
  List.concat_map
    (fun asset ->
      List.concat_map
        (fun subject ->
          List.concat_map
            (fun mode ->
              List.concat_map
                (fun op ->
                  [
                    { Ir.mode; subject; asset; op; msg_id = None };
                    { Ir.mode; subject; asset; op; msg_id = Some 5 };
                  ])
                [ Ir.Read; Ir.Write ])
            modes)
        subjects)
    assets

let strip_rates (p : Ast.policy) =
  let strip_rule (r : Ast.rule) = { r with Ast.rate = None } in
  {
    p with
    Ast.sections =
      List.map
        (function
          | Ast.Global b -> Ast.Global { b with rules = List.map strip_rule b.rules }
          | Ast.Modes (m, bs) ->
              Ast.Modes
                (m, List.map (fun (b : Ast.asset_block) ->
                        { b with rules = List.map strip_rule b.rules }) bs)
          | Ast.Default _ as s -> s)
        p.Ast.sections;
  }

let prop_default_deny_for_strangers =
  QCheck.Test.make ~name:"unknown subjects fall to the default" ~count:100
    (QCheck.make policy_gen) (fun p ->
      (* force default deny and drop Any_subject rules *)
      let p =
        {
          p with
          Ast.sections =
            Ast.Default Ast.Deny
            :: List.filter_map
                 (function
                   | Ast.Default _ -> None
                   | s -> Some s)
                 p.Ast.sections;
        }
      in
      match Compile.compile p with
      | Error _ -> QCheck.assume_fail ()
      | Ok (db, _) ->
          let has_any =
            List.exists
              (fun (r : Ir.rule) -> r.subjects = Ast.Any_subject)
              db.Ir.rules
          in
          QCheck.assume (not has_any);
          let e = Engine.create db in
          List.for_all
            (fun asset ->
              not
                (Engine.permitted e
                   {
                     Ir.mode = "normal";
                     subject = "stranger_subject";
                     asset;
                     op = Ir.Write;
                     msg_id = None;
                   }))
            (Ir.assets db))

let prop_strategies_agree_without_conflicts =
  QCheck.Test.make ~name:"all strategies agree on conflict-free policies"
    ~count:100 (QCheck.make policy_gen) (fun p ->
      let p = strip_rates p in
      match Compile.compile p with
      | Error _ -> QCheck.assume_fail ()
      | Ok (db, _) ->
          QCheck.assume (Conflict.conflicts db = []);
          let engines =
            List.map
              (fun s -> Engine.create ~cache:false ~strategy:s db)
              [ Engine.Deny_overrides; Engine.Allow_overrides; Engine.First_match ]
          in
          List.for_all
            (fun req ->
              match List.map (fun e -> Engine.permitted e req) engines with
              | [ a; b; c ] -> a = b && b = c
              | _ -> false)
            (requests_for db))

let prop_normalise_idempotent =
  QCheck.Test.make ~name:"normalise is idempotent" ~count:200
    (QCheck.make policy_gen) (fun p ->
      Ast.normalise (Ast.normalise p) = Ast.normalise p)

let prop_deny_overrides_monotone_in_denies =
  QCheck.Test.make ~name:"adding a deny rule never grants more" ~count:100
    (QCheck.make (QCheck.Gen.pair policy_gen rule_gen)) (fun (p, extra) ->
      let extra = { extra with Ast.decision = Ast.Deny; rate = None } in
      let p = strip_rates p in
      match Compile.compile p with
      | Error _ -> QCheck.assume_fail ()
      | Ok (db, _) -> (
          let target_asset =
            match Ir.assets db with a :: _ -> a | [] -> "lonely"
          in
          let p' =
            {
              p with
              Ast.sections =
                p.Ast.sections
                @ [ Ast.Global { Ast.asset = target_asset; rules = [ extra ] } ];
            }
          in
          match Compile.compile p' with
          | Error _ -> QCheck.assume_fail ()
          | Ok (db', _) ->
              let e = Engine.create ~cache:false db in
              let e' = Engine.create ~cache:false db' in
              List.for_all
                (fun req ->
                  (not (Engine.permitted e' req)) || Engine.permitted e req)
                (requests_for db)))

(* ---------- Intervals ---------- *)

module Intervals = Secpol_policy.Intervals

let test_intervals_normalise () =
  let t = Intervals.of_ranges [ (8, 12); (5, 10); (13, 20); (30, 30) ] in
  Alcotest.(check (list (pair int int))) "merged + sorted"
    [ (5, 20); (30, 30) ] (Intervals.ranges t);
  check Alcotest.int "cardinal" 17 (Intervals.cardinal t);
  Alcotest.(check bool) "empty" true (Intervals.is_empty Intervals.empty)

let test_intervals_mem () =
  let t = Intervals.of_ranges [ (0x100, 0x10f); (0x200, 0x200) ] in
  List.iter
    (fun (x, expect) ->
      Alcotest.(check bool) (Printf.sprintf "mem %#x" x) expect (Intervals.mem t x))
    [ (0x0ff, false); (0x100, true); (0x105, true); (0x10f, true);
      (0x110, false); (0x1ff, false); (0x200, true); (0x201, false) ];
  Alcotest.(check bool) "empty never matches" false (Intervals.mem Intervals.empty 0)

let test_intervals_add_remove () =
  let t = Intervals.add Intervals.empty ~lo:10 ~hi:20 in
  (* adjacent ranges coalesce *)
  let t = Intervals.add t ~lo:21 ~hi:25 in
  Alcotest.(check (list (pair int int))) "coalesced" [ (10, 25) ] (Intervals.ranges t);
  (* removal splits a straddling range *)
  let t = Intervals.remove t ~lo:15 ~hi:17 in
  Alcotest.(check (list (pair int int))) "split"
    [ (10, 14); (18, 25) ] (Intervals.ranges t);
  let t = Intervals.remove t ~lo:0 ~hi:100 in
  Alcotest.(check bool) "removed all" true (Intervals.is_empty t)

let test_intervals_validation () =
  Alcotest.check_raises "reversed pair"
    (Invalid_argument "Intervals: bad range 9..5") (fun () ->
      ignore (Intervals.of_ranges [ (9, 5) ]));
  Alcotest.check_raises "negative bound"
    (Invalid_argument "Intervals: bad range -1..5") (fun () ->
      ignore (Intervals.add Intervals.empty ~lo:(-1) ~hi:5))

(* ---------- Compiled decision table ---------- *)

module Table = Secpol_policy.Table

let table_stats_exn e =
  match Engine.table_stats e with
  | Some s -> s
  | None -> Alcotest.fail "expected a compiled table"

let test_table_const_folding () =
  (* unconditional head rules collapse to constants *)
  let db =
    compile_ok
      "policy \"f\" version 1 { default deny; asset a { allow rw from alice; \
       deny write from bob; } }"
  in
  let e = Engine.create db in
  let s = table_stats_exn e in
  (* alice:read, alice:write, bob:write are exact buckets; all unconditional *)
  check Alcotest.int "buckets" 3 s.Table.buckets;
  check Alcotest.int "all folded" 3 s.Table.folded;
  check Alcotest.int "no wildcard buckets" 0 s.Table.wildcard_buckets;
  Alcotest.(check bool) "alice write" true
    (Engine.permitted e (request ~subject:"alice" ~asset:"a" ~op:Ir.Write ()));
  Alcotest.(check bool) "bob write" false
    (Engine.permitted e (request ~subject:"bob" ~asset:"a" ~op:Ir.Write ()))

let test_table_no_folding_under_conditions () =
  (* mode-, message- and rate-conditioned head rules must keep the scan *)
  let db =
    compile_ok
      "policy \"f\" version 1 { default deny; mode m { asset a { allow read \
       from x; } } asset b { allow write from y messages 1..5; } asset c { \
       allow write from z rate 1 per 100; } }"
  in
  let s = table_stats_exn (Engine.create db) in
  check Alcotest.int "nothing folded" 0 s.Table.folded

let test_table_wildcard_fallback () =
  let db =
    compile_ok
      "policy \"w\" version 1 { default deny; asset a { allow read from any; \
       deny read from evil; } }"
  in
  let e = Engine.create db in
  let s = table_stats_exn e in
  check Alcotest.int "wildcard bucket for unnamed subjects" 1 s.Table.wildcard_buckets;
  Alcotest.(check bool) "stranger allowed via wildcard" true
    (Engine.permitted e (request ~subject:"stranger" ~asset:"a" ()));
  Alcotest.(check bool) "named subject sees merged bucket (deny overrides)" false
    (Engine.permitted e (request ~subject:"evil" ~asset:"a" ()));
  (* first-match reorders: the any-allow precedes the deny in source order *)
  let e' = Engine.create ~strategy:Engine.First_match db in
  Alcotest.(check bool) "first match lets the earlier any-allow win" true
    (Engine.permitted e' (request ~subject:"evil" ~asset:"a" ()))

let test_table_interpreted_mode () =
  let e = Engine.create ~mode:`Interpreted (compile_ok sample_source) in
  Alcotest.(check bool) "no table in interpreted mode" true
    (Engine.table_stats e = None);
  Alcotest.(check bool) "mode accessor" true (Engine.mode e = `Interpreted);
  Alcotest.(check bool) "still decides" true (Engine.permitted e (request ()))

let test_table_swap_recompiles () =
  let e = Engine.create (compile_ok sample_source) in
  let before = table_stats_exn e in
  Engine.swap_db e
    (compile_ok "policy \"tiny\" version 9 { default deny; asset a { allow \
                 read from x; } }");
  let after = table_stats_exn e in
  Alcotest.(check bool) "table recompiled on swap" true (before <> after);
  check Alcotest.int "one bucket" 1 after.Table.buckets

(* ---------- Bounded decision cache ---------- *)

let test_cache_flush_at_capacity () =
  let e = Engine.create ~cache_capacity:4 (compile_ok sample_source) in
  (* 8 distinct uncached requests against a 4-entry cache *)
  for i = 0 to 7 do
    ignore (Engine.decide e (request ~subject:(Printf.sprintf "s%d" i) ()))
  done;
  let stats = Engine.stats e in
  Alcotest.(check bool) "flushed at least once" true (stats.Engine.cache_flushes >= 1);
  check Alcotest.int "all were misses" 8 stats.Engine.cache_misses;
  (* correctness survives the flush *)
  Alcotest.(check bool) "still allows" true (Engine.permitted e (request ()));
  Alcotest.(check bool) "still denies" false
    (Engine.permitted e (request ~subject:"s3" ()))

let test_cache_capacity_validation () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Engine.create: cache_capacity must be positive")
    (fun () ->
      ignore (Engine.create ~cache_capacity:0 (compile_ok sample_source)))

(* ---------- Compiled / interpreted equivalence ---------- *)

let all_strategies =
  [ Engine.Deny_overrides; Engine.Allow_overrides; Engine.First_match ]

let prop_compiled_equals_interpreted =
  QCheck.Test.make
    ~name:"compiled and interpreted engines agree (decision, rule, stats)"
    ~count:200 (QCheck.make policy_gen) (fun p ->
      match Compile.compile p with
      | Error _ -> QCheck.assume_fail ()
      | Ok (db, _) ->
          List.for_all
            (fun strategy ->
              let ei = Engine.create ~cache:false ~strategy ~mode:`Interpreted db in
              let ec = Engine.create ~cache:false ~strategy ~mode:`Compiled db in
              let reqs = requests_for db in
              (* repeated probes at advancing clocks drive any rate-limited
                 rules through grant, exhaustion and window-expiry on both
                 engines in lockstep *)
              List.for_all
                (fun now ->
                  List.for_all
                    (fun req ->
                      let a = Engine.decide ~now ei req in
                      let b = Engine.decide ~now ec req in
                      a.Engine.decision = b.Engine.decision
                      && a.Engine.matched = b.Engine.matched)
                    reqs)
                [ 0.0; 0.0; 0.001; 0.5; 20.0 ]
              && Engine.stats ei = Engine.stats ec)
            all_strategies)

let prop_compiled_cache_transparent =
  QCheck.Test.make ~name:"bounded cache never changes a decision" ~count:100
    (QCheck.make policy_gen) (fun p ->
      let p = strip_rates p in
      match Compile.compile p with
      | Error _ -> QCheck.assume_fail ()
      | Ok (db, _) ->
          let plain = Engine.create ~cache:false db in
          let cached = Engine.create ~cache:true ~cache_capacity:8 db in
          let reqs = requests_for db in
          (* two passes: the second hits the cache where it survived *)
          List.for_all
            (fun req ->
              (Engine.decide plain req).Engine.decision
              = (Engine.decide cached req).Engine.decision)
            (reqs @ reqs))

(* ---------- Behavioural rate limits ---------- *)

let test_rate_parses_and_prints () =
  let src =
    "policy \"r\" version 1 { asset lock { allow write from telematics rate \
     2 per 1000; } }"
  in
  let p = parse_ok src in
  (match p.Ast.sections with
  | [ Ast.Global { rules = [ { rate = Some r; _ } ]; _ } ] ->
      check Alcotest.int "count" 2 r.Ast.count;
      check Alcotest.int "window" 1000 r.Ast.window_ms
  | _ -> Alcotest.fail "rate not parsed");
  let p' = parse_ok (Printer.to_string p) in
  Alcotest.(check bool) "round trip" true (Ast.equal p p')

let test_rate_rejects_bad () =
  (match
     Parser.parse
       "policy \"r\" version 1 { asset a { allow write from x rate 0 per 10; } }"
   with
  | Ok _ -> Alcotest.fail "accepted zero count"
  | Error _ -> ());
  match
    Compile.compile
      (parse_ok
         "policy \"r\" version 1 { asset a { deny write from x rate 1 per 10; } }")
  with
  | Ok _ -> Alcotest.fail "accepted rate on a deny rule"
  | Error _ -> ()

let rated_engine () =
  Engine.create
    (compile_ok
       "policy \"r\" version 1 { default deny; asset lock { allow write from \
        telematics rate 2 per 1000; } }")

let rated_req = request ~subject:"telematics" ~asset:"lock" ~op:Ir.Write ()

let test_rate_sliding_window () =
  let e = rated_engine () in
  Alcotest.(check bool) "1st allowed" true (Engine.permitted ~now:0.0 e rated_req);
  Alcotest.(check bool) "2nd allowed" true (Engine.permitted ~now:0.1 e rated_req);
  Alcotest.(check bool) "3rd denied (budget)" false
    (Engine.permitted ~now:0.2 e rated_req);
  (* window slides: the grant at t=0.0 expires after 1 s *)
  Alcotest.(check bool) "allowed again after the window" true
    (Engine.permitted ~now:1.05 e rated_req);
  Alcotest.(check bool) "then the budget binds again" false
    (Engine.permitted ~now:1.06 e rated_req)

let test_rate_window_boundary () =
  let e =
    Engine.create
      (compile_ok
         "policy \"r\" version 1 { default deny; asset lock { allow write \
          from telematics rate 1 per 1000; } }")
  in
  Alcotest.(check bool) "grant at 0" true
    (Engine.permitted ~now:0.0 e rated_req);
  Alcotest.(check bool) "denied inside the window" false
    (Engine.permitted ~now:0.5 e rated_req);
  Alcotest.(check bool) "denied just inside" false
    (Engine.permitted ~now:0.9999 e rated_req);
  (* the grant at 0 expires at exactly 0 + window *)
  Alcotest.(check bool) "allowed exactly at the boundary" true
    (Engine.permitted ~now:1.0 e rated_req)

let test_rate_backwards_clock () =
  let e =
    Engine.create
      (compile_ok
         "policy \"r\" version 1 { default deny; asset lock { allow write \
          from telematics rate 1 per 1000; } }")
  in
  Alcotest.(check bool) "grant at 5" true
    (Engine.permitted ~now:5.0 e rated_req);
  (* the caller's clock steps backwards: the live grant must keep blocking
     (fail-closed), not linger forever nor vanish early *)
  Alcotest.(check bool) "denied at the regressed clock" false
    (Engine.permitted ~now:0.0 e rated_req);
  Alcotest.(check bool) "still denied just before expiry" false
    (Engine.permitted ~now:5.999 e rated_req);
  Alcotest.(check bool) "allowed once the grant expires" true
    (Engine.permitted ~now:6.0 e rated_req)

let test_rate_window_clamp () =
  let module W = Secpol_policy.Rate_window in
  let w = W.create ~count:2 ~window_ms:1000 in
  W.consume w ~now:5.0;
  (* a regressed consume is stamped at the newest recorded grant (5.0),
     keeping the queue sorted for front-only pruning *)
  W.consume w ~now:3.0;
  check Alcotest.int "both live at 5.5" 2 (W.in_window w ~now:5.5);
  check Alcotest.int "both expire together at 6" 0 (W.in_window w ~now:6.0);
  W.reset w;
  (* reset clears the watermark too: early timestamps are usable again *)
  Alcotest.(check bool) "fresh window after reset" true (W.admit w ~now:0.0)

let test_rate_per_subject () =
  let e =
    Engine.create
      (compile_ok
         "policy \"r\" version 1 { default deny; asset lock { allow write \
          from any rate 1 per 1000; } }")
  in
  let req s = request ~subject:s ~asset:"lock" ~op:Ir.Write () in
  Alcotest.(check bool) "alice ok" true (Engine.permitted ~now:0.0 e (req "alice"));
  Alcotest.(check bool) "bob has his own budget" true
    (Engine.permitted ~now:0.0 e (req "bob"));
  Alcotest.(check bool) "alice exhausted" false
    (Engine.permitted ~now:0.1 e (req "alice"))

let test_rate_bypasses_cache () =
  let e = rated_engine () in
  ignore (Engine.decide ~now:0.0 e rated_req);
  let second = Engine.decide ~now:0.1 e rated_req in
  Alcotest.(check bool) "never served from cache" false second.Engine.from_cache;
  (* unrated assets still cache *)
  let other = request ~subject:"x" ~asset:"other" ~op:Ir.Read () in
  ignore (Engine.decide e other);
  Alcotest.(check bool) "other asset cached" true
    (Engine.decide e other).Engine.from_cache

let test_rate_reset_on_swap () =
  let e = rated_engine () in
  Alcotest.(check bool) "1st" true (Engine.permitted ~now:0.0 e rated_req);
  Alcotest.(check bool) "2nd" true (Engine.permitted ~now:0.0 e rated_req);
  Alcotest.(check bool) "exhausted" false (Engine.permitted ~now:0.0 e rated_req);
  Engine.swap_db e (Engine.db e);
  Alcotest.(check bool) "fresh budget after update" true
    (Engine.permitted ~now:0.0 e rated_req)

(* ---------- Conflict analysis ---------- *)

let test_conflicts_detected () =
  let db =
    compile_ok
      "policy \"x\" version 1 { asset a { allow write from evil; deny write \
       from evil; } }"
  in
  check Alcotest.int "one conflict" 1 (List.length (Conflict.conflicts db))

let test_no_conflict_on_disjoint () =
  let db =
    compile_ok
      "policy \"x\" version 1 { asset a { allow write from alice; deny write \
       from bob; } asset b { deny write from alice; } }"
  in
  check Alcotest.int "no conflicts" 0 (List.length (Conflict.conflicts db))

let test_no_conflict_disjoint_messages () =
  let db =
    compile_ok
      "policy \"x\" version 1 { asset a { allow write from e messages 1..5; \
       deny write from e messages 6..9; } }"
  in
  check Alcotest.int "disjoint ranges no conflict" 0
    (List.length (Conflict.conflicts db));
  let db2 =
    compile_ok
      "policy \"x\" version 1 { asset a { allow write from e messages 1..5; \
       deny write from e messages 5..9; } }"
  in
  check Alcotest.int "overlapping ranges conflict" 1
    (List.length (Conflict.conflicts db2))

let test_shadowed_rules () =
  let db =
    compile_ok
      "policy \"x\" version 1 { asset a { allow rw from any; allow read from \
       alice; } }"
  in
  check Alcotest.int "one shadowed pair" 1 (List.length (Conflict.shadowed db))

let test_mode_overlap_rules () =
  let db =
    compile_ok
      "policy \"x\" version 1 { mode m1 { asset a { allow write from e; } } \
       mode m2 { asset a { deny write from e; } } }"
  in
  check Alcotest.int "disjoint modes no conflict" 0
    (List.length (Conflict.conflicts db));
  let db2 =
    compile_ok
      "policy \"x\" version 1 { mode m1, m2 { asset a { allow write from e; } \
       } mode m2 { asset a { deny write from e; } } }"
  in
  check Alcotest.int "shared mode conflicts" 1
    (List.length (Conflict.conflicts db2))

let test_covers () =
  let db =
    compile_ok
      "policy \"x\" version 1 { asset a { allow rw from any; allow read from \
       alice messages 1..5; } }"
  in
  match db.Ir.rules with
  | [ broad; narrow ] ->
      Alcotest.(check bool) "broad covers narrow" true (Conflict.covers broad narrow);
      Alcotest.(check bool) "narrow does not cover broad" false
        (Conflict.covers narrow broad)
  | _ -> Alcotest.fail "expected two rules"

(* ---------- Derivation ---------- *)

let dread =
  match Secpol_threat.Dread.of_list [ 8; 5; 4; 6; 4 ] with
  | Ok d -> d
  | Error e -> failwith e

let stride =
  match Secpol_threat.Stride.of_string "STD" with
  | Ok s -> s
  | Error e -> failwith e

let threat ?(id = "spoof_ecu") ?(legit = [ Threat.Read ]) () =
  Threat.make ~id ~title:"t" ~asset:"ev_ecu"
    ~entry_points:[ "sensors"; "door_locks" ] ~modes:[ "normal" ] ~stride
    ~dread ~attack_operation:Threat.Write ~legitimate_operations:legit ()

let test_row_access () =
  let acc legit = Derive.row_access (threat ~legit ()) in
  Alcotest.(check bool) "R" true (acc [ Threat.Read ] = Some Derive.R);
  Alcotest.(check bool) "W" true (acc [ Threat.Write ] = Some Derive.W);
  Alcotest.(check bool) "RW" true
    (acc [ Threat.Read; Threat.Write ] = Some Derive.RW);
  Alcotest.(check bool) "none" true (acc [] = None)

let test_threat_to_policy_blocks_attack () =
  let p = Derive.threat_to_policy (threat ()) in
  let db = Compile.compile_exn p in
  let e = Engine.create db in
  Alcotest.(check bool) "legit read allowed" true
    (Engine.permitted e (request ~subject:"sensors" ~op:Ir.Read ()));
  Alcotest.(check bool) "attack write denied" false
    (Engine.permitted e (request ~subject:"sensors" ~op:Ir.Write ()))

let test_threat_to_policy_residual () =
  let p = Derive.threat_to_policy (threat ~legit:[ Threat.Read; Threat.Write ] ()) in
  let e = Engine.create (Compile.compile_exn p) in
  Alcotest.(check bool) "residual: attack op still allowed" true
    (Engine.permitted e (request ~subject:"sensors" ~op:Ir.Write ()))

let test_model_to_policy () =
  let model =
    Secpol_threat.Model.make_exn ~use_case:"Test Case"
      ~assets:
        [ Secpol_threat.Asset.make ~id:"ev_ecu" ~name:"ECU"
            Secpol_threat.Asset.Safety_critical ]
      ~entry_points:
        [
          Secpol_threat.Entry_point.make ~id:"sensors" ~name:"S"
            Secpol_threat.Entry_point.Bus;
          Secpol_threat.Entry_point.make ~id:"door_locks" ~name:"D"
            Secpol_threat.Entry_point.Bus;
        ]
      ~modes:[ "normal" ] ~threats:[ threat () ] ()
  in
  let p = Derive.model_to_policy ~version:7 model in
  check Alcotest.string "name mangled" "test_case" p.Ast.name;
  check Alcotest.int "version" 7 p.Ast.version;
  let db = Compile.compile_exn p in
  Alcotest.(check bool) "default deny" true (db.Ir.default = Ast.Deny);
  check Alcotest.int "residuals" 0 (List.length (Derive.residual_risks model))

let test_derived_countermeasures_compile () =
  let model =
    Secpol_threat.Model.make_exn ~use_case:"cm"
      ~assets:
        [ Secpol_threat.Asset.make ~id:"ev_ecu" ~name:"ECU"
            Secpol_threat.Asset.Operational ]
      ~entry_points:
        [
          Secpol_threat.Entry_point.make ~id:"sensors" ~name:"S"
            Secpol_threat.Entry_point.Bus;
          Secpol_threat.Entry_point.make ~id:"door_locks" ~name:"D"
            Secpol_threat.Entry_point.Wireless;
        ]
      ~modes:[ "normal" ] ~threats:[ threat () ] ()
  in
  List.iter
    (fun (cm : Secpol_threat.Countermeasure.t) ->
      match cm.kind with
      | Secpol_threat.Countermeasure.Policy src -> (
          match Compile.of_source src with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("derived policy does not compile: " ^ e))
      | Secpol_threat.Countermeasure.Guideline _ ->
          Alcotest.fail "expected policy countermeasures")
    (Derive.countermeasures model)

(* ---------- Updates ---------- *)

let test_bundle_verify_and_tamper () =
  let b = Update.bundle (parse_ok sample_source) in
  Alcotest.(check bool) "verifies" true (Update.verify b);
  let evil = Update.tampered b ~payload:"policy \"evil\" version 99 { }" in
  Alcotest.(check bool) "tamper detected" false (Update.verify evil)

let test_bundle_of_source_validates () =
  (match Update.bundle_of_source "policy \"x\" version 1 { default deny; }" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match Update.bundle_of_source "policy \"x\" version 1 {" with
  | Ok _ -> Alcotest.fail "accepted malformed source"
  | Error _ -> ()

let test_store_install_and_downgrade () =
  let store = Update.create () in
  let v1 = Update.bundle (parse_ok "policy \"p\" version 1 { default deny; }") in
  let v2 = Update.bundle (parse_ok "policy \"p\" version 2 { default deny; }") in
  (match Update.install store v1 with Ok () -> () | Error e -> Alcotest.fail e);
  (match Update.install store v2 with Ok () -> () | Error e -> Alcotest.fail e);
  (match Update.install store v1 with
  | Ok () -> Alcotest.fail "accepted downgrade"
  | Error _ -> ());
  (match Update.current store "p" with
  | Some b -> check Alcotest.int "current is v2" 2 b.Update.version
  | None -> Alcotest.fail "nothing installed");
  check Alcotest.int "history" 2 (List.length (Update.history store "p"));
  Alcotest.(check (list string)) "names" [ "p" ] (Update.names store)

let test_store_rejects_tampered () =
  let store = Update.create () in
  let b = Update.bundle (parse_ok "policy \"p\" version 1 { }") in
  match Update.install store (Update.tampered b ~payload:"policy \"p\" version 1 { default allow; }") with
  | Ok () -> Alcotest.fail "installed tampered bundle"
  | Error _ -> ()

let test_store_rollback () =
  let store = Update.create () in
  let v1 = Update.bundle (parse_ok "policy \"p\" version 1 { default deny; }") in
  let v2 = Update.bundle (parse_ok "policy \"p\" version 2 { default deny; }") in
  (match Update.rollback store "p" with
  | Ok _ -> Alcotest.fail "rollback on empty store"
  | Error _ -> ());
  ignore (Update.install store v1);
  ignore (Update.install store v2);
  (match Update.rollback store "p" with
  | Ok b -> check Alcotest.int "back to v1" 1 b.Update.version
  | Error e -> Alcotest.fail e);
  match Update.rollback store "p" with
  | Ok _ -> Alcotest.fail "rolled back past the first version"
  | Error _ -> ()

let test_current_db () =
  let store = Update.create () in
  ignore
    (Update.install store
       (Update.bundle
          (parse_ok "policy \"p\" version 1 { asset a { allow read from x; } }")));
  match Update.current_db store "p" with
  | Some db -> check Alcotest.int "compiled" 1 (List.length db.Ir.rules)
  | None -> Alcotest.fail "expected a compiled db"

let test_diff () =
  let old_p = parse_ok "policy \"p\" version 1 { asset a { allow read from x; } }" in
  let new_p =
    parse_ok
      "policy \"p\" version 2 { default allow; asset a { allow read from x; \
       allow write from y; } }"
  in
  let d = Update.diff old_p new_p in
  check Alcotest.int "added" 1 (List.length d.Update.added);
  check Alcotest.int "removed" 0 (List.length d.Update.removed);
  Alcotest.(check bool) "default changed" true (d.Update.default_changed <> None)

let test_signed_bundles () =
  let key = "oem-provisioned-key" in
  let b = Update.bundle (parse_ok "policy \"p\" version 1 { default deny; }") in
  Alcotest.(check bool) "unsigned fails authenticity" false
    (Update.verify_signed ~key b);
  let signed = Update.sign ~key b in
  Alcotest.(check bool) "signed verifies" true (Update.verify_signed ~key signed);
  Alcotest.(check bool) "wrong key rejected" false
    (Update.verify_signed ~key:"not-the-key" signed);
  Alcotest.(check bool) "tampering breaks the signature" false
    (Update.verify_signed ~key
       (Update.tampered signed ~payload:"policy \"p\" version 1 { default allow; }"));
  (* signing still passes plain integrity *)
  Alcotest.(check bool) "plain verify unaffected" true (Update.verify signed)

let test_install_signed () =
  let key = "oem-provisioned-key" in
  let store = Update.create () in
  let b = Update.bundle (parse_ok "policy \"p\" version 1 { default deny; }") in
  (match Update.install_signed store ~key b with
  | Ok () -> Alcotest.fail "installed an unsigned bundle"
  | Error _ -> ());
  (match Update.install_signed store ~key (Update.sign ~key:"wrong" b) with
  | Ok () -> Alcotest.fail "installed a wrongly-signed bundle"
  | Error _ -> ());
  (match Update.install_signed store ~key (Update.sign ~key b) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Update.current store "p" with
  | Some installed -> check Alcotest.int "v1 live" 1 installed.Update.version
  | None -> Alcotest.fail "nothing installed"

(* ---------- Coverage ---------- *)

module Coverage = Secpol_policy.Coverage

let test_coverage_analysis () =
  let db =
    compile_ok
      "policy \"c\" version 1 { default deny; asset a { allow rw from alice; \
       } mode m1 { asset b { allow read from any; } } }"
  in
  let r =
    Coverage.analyse db ~modes:[ "m1"; "m2" ]
      ~subjects:[ "alice"; "bob" ] ~assets:[ "a"; "b" ]
  in
  (* grid: 2 modes x 2 subjects x 2 assets x 2 ops = 16 cells.
     covered: asset a / alice (both ops, both modes) = 4;
              asset b / read / any subject / m1 only = 2. *)
  check Alcotest.int "total" 16 r.Coverage.total;
  check Alcotest.int "covered" 6 r.Coverage.covered;
  check Alcotest.int "gaps" 10 (List.length r.Coverage.gaps);
  Alcotest.(check bool) "gap example: bob write a in m2" true
    (List.mem
       { Coverage.mode = "m2"; subject = "bob"; asset = "a"; op = Ir.Write }
       r.Coverage.gaps);
  Alcotest.(check bool) "not a gap: alice write a in m2" false
    (List.mem
       { Coverage.mode = "m2"; subject = "alice"; asset = "a"; op = Ir.Write }
       r.Coverage.gaps)

let test_coverage_full () =
  let db =
    compile_ok "policy \"c\" version 1 { asset a { allow rw from any; } }"
  in
  let r = Coverage.analyse db ~modes:[ "m" ] ~subjects:[ "x" ] ~assets:[ "a" ] in
  check Alcotest.(float 0.0) "fully covered" 1.0 (Coverage.ratio r);
  Alcotest.check_raises "empty universe"
    (Invalid_argument "Coverage.analyse: empty universe") (fun () ->
      ignore (Coverage.analyse db ~modes:[] ~subjects:[ "x" ] ~assets:[ "a" ]))

(* ---------- Audit ---------- *)

let test_audit_log () =
  let e = Engine.create (compile_ok sample_source) in
  let audit = Audit.create ~capacity:10 () in
  let log req = Audit.log audit ~time:1.0 req (Engine.decide e req) in
  log (request ());
  log (request ~subject:"stranger" ());
  check Alcotest.int "two entries" 2 (List.length (Audit.entries audit));
  check Alcotest.int "one denial" 1 (List.length (Audit.denials audit));
  check Alcotest.int "one allow" 1 (List.length (Audit.allows audit));
  check Alcotest.int "by subject" 1
    (List.length (Audit.denials_for_subject audit "stranger"));
  check Alcotest.int "total" 2 (Audit.total_logged audit)

let test_audit_ring_buffer () =
  let e = Engine.create (compile_ok sample_source) in
  let audit = Audit.create ~capacity:5 () in
  for i = 0 to 19 do
    let req = request ~subject:(Printf.sprintf "s%d" i) () in
    Audit.log audit ~time:(float_of_int i) req (Engine.decide e req)
  done;
  Alcotest.(check bool) "bounded" true (List.length (Audit.entries audit) <= 5);
  check Alcotest.int "total counts evictions" 20 (Audit.total_logged audit)

let () =
  Alcotest.run "secpol_policy"
    [
      ( "lexer",
        [
          quick "basic tokens" test_lexer_basic;
          quick "numbers" test_lexer_numbers;
          quick "comments" test_lexer_comments;
          quick "strings" test_lexer_strings;
          quick "ranges" test_lexer_dotdot;
          quick "positions" test_lexer_positions;
          quick "illegal char" test_lexer_illegal_char;
        ] );
      ( "parser",
        [
          quick "sample policy" test_parse_sample;
          quick "syntax errors" test_parse_errors;
          quick "empty range" test_parse_empty_range_rejected;
          quick "parse_many" test_parse_many;
        ] );
      ( "printer",
        [
          quick "sample round trip" test_print_parse_roundtrip;
          quick "range merging" test_normalise_merges_ranges;
          quick "empty subjects" test_normalise_empty_subjects;
          QCheck_alcotest.to_alcotest prop_printer_roundtrip;
        ] );
      ( "compiler",
        [
          quick "sample" test_compile_sample;
          quick "default deny" test_compile_default_deny_when_absent;
          quick "multiple defaults" test_compile_multiple_defaults_error;
          quick "empty mode section" test_compile_empty_mode_section_error;
          quick "unknown-name warnings" test_compile_warnings;
          quick "of_source errors" test_compile_of_source_error_rendering;
        ] );
      ( "engine",
        [
          quick "allow + default" test_engine_allow_and_default;
          quick "mode scoping" test_engine_mode_scoping;
          quick "message scoping" test_engine_message_scoping;
          quick "deny overrides" test_engine_deny_overrides;
          quick "first match" test_engine_first_match;
          quick "allow overrides" test_engine_allow_overrides;
          quick "cache" test_engine_cache;
          quick "cache disabled" test_engine_no_cache;
          quick "hot swap" test_engine_swap_db;
          quick "provenance" test_engine_matched_rule_provenance;
        ] );
      ( "soundness",
        [
          QCheck_alcotest.to_alcotest prop_default_deny_for_strangers;
          QCheck_alcotest.to_alcotest prop_strategies_agree_without_conflicts;
          QCheck_alcotest.to_alcotest prop_normalise_idempotent;
          QCheck_alcotest.to_alcotest prop_deny_overrides_monotone_in_denies;
        ] );
      ( "intervals",
        [
          quick "normalise" test_intervals_normalise;
          quick "membership" test_intervals_mem;
          quick "add + remove" test_intervals_add_remove;
          quick "validation" test_intervals_validation;
        ] );
      ( "table",
        [
          quick "constant folding" test_table_const_folding;
          quick "conditions block folding" test_table_no_folding_under_conditions;
          quick "wildcard fallback" test_table_wildcard_fallback;
          quick "interpreted mode" test_table_interpreted_mode;
          quick "swap recompiles" test_table_swap_recompiles;
          QCheck_alcotest.to_alcotest prop_compiled_equals_interpreted;
        ] );
      ( "cache",
        [
          quick "flush at capacity" test_cache_flush_at_capacity;
          quick "capacity validation" test_cache_capacity_validation;
          QCheck_alcotest.to_alcotest prop_compiled_cache_transparent;
        ] );
      ( "rates",
        [
          quick "parse + print" test_rate_parses_and_prints;
          quick "validation" test_rate_rejects_bad;
          quick "sliding window" test_rate_sliding_window;
          quick "window boundary" test_rate_window_boundary;
          quick "backwards clock" test_rate_backwards_clock;
          quick "backwards-clock clamp" test_rate_window_clamp;
          quick "per subject" test_rate_per_subject;
          quick "cache bypass" test_rate_bypasses_cache;
          quick "reset on update" test_rate_reset_on_swap;
        ] );
      ( "conflicts",
        [
          quick "detected" test_conflicts_detected;
          quick "disjoint subjects/assets" test_no_conflict_on_disjoint;
          quick "message ranges" test_no_conflict_disjoint_messages;
          quick "shadowing" test_shadowed_rules;
          quick "mode overlap" test_mode_overlap_rules;
          quick "covers" test_covers;
        ] );
      ( "derive",
        [
          quick "row access" test_row_access;
          quick "blocks attack op" test_threat_to_policy_blocks_attack;
          quick "residual risk" test_threat_to_policy_residual;
          quick "model to policy" test_model_to_policy;
          quick "countermeasures compile" test_derived_countermeasures_compile;
        ] );
      ( "updates",
        [
          quick "verify + tamper" test_bundle_verify_and_tamper;
          quick "bundle_of_source" test_bundle_of_source_validates;
          quick "install + downgrade" test_store_install_and_downgrade;
          quick "tampered install" test_store_rejects_tampered;
          quick "rollback" test_store_rollback;
          quick "current_db" test_current_db;
          quick "diff" test_diff;
          quick "signed bundles" test_signed_bundles;
          quick "install_signed" test_install_signed;
        ] );
      ( "coverage",
        [
          quick "grid analysis" test_coverage_analysis;
          quick "full coverage + validation" test_coverage_full;
        ] );
      ( "audit",
        [
          quick "log + queries" test_audit_log;
          quick "ring buffer" test_audit_ring_buffer;
        ] );
    ]
