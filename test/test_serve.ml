(* Tests for the serving stack: the wire codec (round-trip property and
   adversarial framing), the persistent domain pool (submission, hot
   swap, backpressure, watchdog timeout, shutdown draining) and the
   daemon end-to-end over a real Unix socket — including the headline
   guarantee: a hot policy swap under concurrent load drops nothing and
   serves no stale decision after the ack. *)

module Ir = Secpol_policy.Ir
module Ast = Secpol_policy.Ast
module Engine = Secpol_policy.Engine
module Table = Secpol_policy.Table
module Compile = Secpol_policy.Compile
module Json = Secpol_policy.Json
module Pool = Secpol_par.Pool
module Wire = Secpol_serve.Wire
module Daemon = Secpol_serve.Daemon
module Client = Secpol_serve.Client

let check = Alcotest.check

let quick name f = Alcotest.test_case name `Quick f

let compile_ok source =
  match Compile.of_source source with
  | Ok db -> db
  | Error e -> Alcotest.failf "compile failed: %s" e

(* Old policy: sensors may read telemetry; engine is covered only by the
   default deny.  New policy widens: sensors may also read engine. *)
let old_source =
  {|
policy "swap_test" version 1 {
  default deny;
  mode normal {
    asset telemetry {
      allow read from sensors, gateway;
    }
  }
}
|}

let new_source =
  {|
policy "swap_test" version 2 {
  default deny;
  mode normal {
    asset telemetry {
      allow read from sensors, gateway;
    }
    asset engine {
      allow read from sensors;
    }
  }
}
|}

let tightened_source =
  {|
policy "swap_test" version 3 {
  default deny;
  mode normal {
    asset telemetry {
      allow read from sensors;
    }
  }
}
|}

let req ?msg_id ?(mode = "normal") ?(op = Ir.Read) subject asset =
  { Ir.mode; subject; asset; op; msg_id }

let probe () = req "sensors" "engine"

(* ------------------------------------------------------------------ *)
(* Wire codec: round-trip property                                     *)
(* ------------------------------------------------------------------ *)

let string_gen = QCheck.Gen.(string_size (0 -- 12))

let req_gen =
  QCheck.Gen.(
    let* mode = string_gen in
    let* subject = string_gen in
    let* asset = string_gen in
    let* op = oneofl [ Ir.Read; Ir.Write ] in
    let* msg_id =
      oneof [ return None; map (fun m -> Some m) (0 -- 0x1FFFFFFF) ]
    in
    return { Ir.mode; subject; asset; op; msg_id })

(* Sizes from the issue list: empty, singleton, odd, and a large-ish
   batch; the full 65535 maximum gets its own unit test below. *)
let batch_size_gen = QCheck.Gen.oneofl [ 0; 1; 3; 7; 65 ]

let msg_gen =
  QCheck.Gen.(
    let* id = 0 -- 0xFFFFFF in
    oneof
      [
        (let* n = batch_size_gen in
         let* reqs = array_size (return n) req_gen in
         return (Wire.Decide_req { id; reqs }));
        (let* n = batch_size_gen in
         let* allows = array_size (return n) bool in
         let* degraded = bool in
         let* shed = bool in
         return (Wire.Decide_resp { id; degraded; shed; allows }));
        return (Wire.Stats_req { id });
        (let* body = string_size (0 -- 200) in
         return (Wire.Stats_resp { id; body }));
        (let* allow_widen = bool in
         let* source = string_size (0 -- 200) in
         return (Wire.Reload_req { id; allow_widen; source }));
        (let* status =
           oneofl [ Wire.Swapped; Wire.Refused_widened; Wire.Rejected ]
         in
         let* widened = 0 -- 1000 in
         let* tightened = 0 -- 1000 in
         let* changed = 0 -- 1000 in
         let* epoch = 1 -- 10000 in
         let* detail = string_gen in
         return
           (Wire.Reload_resp
              { id; status; widened; tightened; changed; epoch; detail }));
        (let* message = string_gen in
         return (Wire.Error_resp { id; message }));
      ])

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"decode (encode msg) = msg" ~count:500
    (QCheck.make msg_gen) (fun msg ->
      Wire.equal msg (Wire.decode_payload (Wire.encode_payload msg)))

let test_wire_max_batch () =
  let reqs =
    Array.init Wire.max_batch (fun i ->
        req ~msg_id:(i land 0xFF) (Printf.sprintf "s%d" (i land 7)) "a")
  in
  let msg = Wire.Decide_req { id = 42; reqs } in
  check Alcotest.bool "max batch round trips" true
    (Wire.equal msg (Wire.decode_payload (Wire.encode_payload msg)));
  let over = Wire.Decide_req { id = 1; reqs = Array.make (Wire.max_batch + 1) (probe ()) } in
  (match Wire.encode_payload over with
  | exception Wire.Malformed _ -> ()
  | _ -> Alcotest.fail "oversized batch encoded")

(* ------------------------------------------------------------------ *)
(* Wire codec: adversarial decoding                                    *)
(* ------------------------------------------------------------------ *)

let expect_malformed what payload =
  match Wire.decode_payload payload with
  | exception Wire.Malformed _ -> ()
  | _ -> Alcotest.failf "%s decoded" what

let test_wire_truncations () =
  let payload =
    Wire.encode_payload
      (Wire.Decide_req { id = 7; reqs = [| probe (); req "a" "b" |] })
  in
  (* every strict prefix must fail closed *)
  for len = 0 to String.length payload - 1 do
    expect_malformed
      (Printf.sprintf "prefix of %d bytes" len)
      (String.sub payload 0 len)
  done

let test_wire_garbage () =
  expect_malformed "empty payload" "";
  expect_malformed "unknown type tag" "\xff\x00\x00\x00\x00";
  expect_malformed "unknown op tag"
    (let good =
       Wire.encode_payload (Wire.Decide_req { id = 0; reqs = [| probe () |] })
     in
     (* the op byte sits 4 bytes before the trailing i32 msg-id column *)
     let b = Bytes.of_string good in
     Bytes.set b (Bytes.length b - 5) '\xee';
     Bytes.to_string b);
  expect_malformed "trailing garbage"
    (Wire.encode_payload (Wire.Stats_req { id = 3 }) ^ "x");
  expect_malformed "garbage bytes" (String.make 64 '\xAA')

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let pool_of ?queue_capacity ?(domains = 2) source =
  let db = compile_ok source in
  let table = Table.compile ~strategy:Engine.Deny_overrides db in
  Pool.create ?queue_capacity ~domains table db

let pool_decide pool ~shard r =
  match
    Pool.try_submit pool ~shard (fun w ->
        (Engine.decide (Pool.worker_engine w) r).Engine.decision)
  with
  | None -> Alcotest.fail "submit refused on an idle pool"
  | Some ticket -> Pool.await ticket

let test_pool_decides () =
  let pool = pool_of old_source in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      check Alcotest.int "epoch 1" 1 (Pool.epoch pool);
      check Alcotest.bool "telemetry allowed" true
        (pool_decide pool ~shard:0 (req "sensors" "telemetry") = Ast.Allow);
      check Alcotest.bool "engine denied" true
        (pool_decide pool ~shard:1 (probe ()) = Ast.Deny))

let test_pool_swap_epoch () =
  let pool = pool_of old_source in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let new_db = compile_ok new_source in
      let table = Table.compile ~strategy:Engine.Deny_overrides new_db in
      check Alcotest.bool "pre-swap deny" true
        (pool_decide pool ~shard:0 (probe ()) = Ast.Deny);
      let epoch = Pool.swap pool table new_db in
      check Alcotest.int "epoch bumped" 2 epoch;
      (* the very next job must see the new generation on every shard *)
      check Alcotest.bool "post-swap allow shard 0" true
        (pool_decide pool ~shard:0 (probe ()) = Ast.Allow);
      check Alcotest.bool "post-swap allow shard 1" true
        (pool_decide pool ~shard:1 (probe ()) = Ast.Allow);
      (match
         Pool.try_submit pool ~shard:0 (fun w -> Pool.worker_epoch w)
       with
      | None -> Alcotest.fail "submit refused"
      | Some t -> check Alcotest.int "worker rebound" 2 (Pool.await t)))

let test_pool_swap_keeps_counters () =
  let pool = pool_of ~domains:1 old_source in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      ignore (pool_decide pool ~shard:0 (req "sensors" "telemetry"));
      ignore (pool_decide pool ~shard:0 (probe ()));
      let new_db = compile_ok new_source in
      let table = Table.compile ~strategy:Engine.Deny_overrides new_db in
      ignore (Pool.swap pool table new_db);
      ignore (pool_decide pool ~shard:0 (probe ()));
      match Pool.try_submit pool ~shard:0 Pool.worker_snapshot with
      | None -> Alcotest.fail "submit refused"
      | Some t ->
          let stats, _registry = Pool.await t in
          (* 2 pre-swap + 1 post-swap: the swap must not zero telemetry *)
          check Alcotest.int "decisions survive swap" 3 stats.Engine.decisions;
          check Alcotest.int "allows survive swap" 2 stats.Engine.allows)

let test_pool_backpressure () =
  let pool = pool_of ~domains:1 ~queue_capacity:2 old_source in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      (* wedge the worker, then overfill the two-slot ring *)
      let gate = Atomic.make false in
      let blocker =
        Pool.try_submit pool ~shard:0 (fun _ ->
            while not (Atomic.get gate) do
              Unix.sleepf 0.001
            done)
      in
      check Alcotest.bool "blocker admitted" true (blocker <> None);
      (* the worker may or may not have dequeued the blocker yet; admit
         until the ring reports full, bounded well above its depth *)
      let refused = ref false in
      let admitted = ref [] in
      let attempts = ref 0 in
      while (not !refused) && !attempts < 16 do
        incr attempts;
        match Pool.try_submit pool ~shard:0 (fun _ -> ()) with
        | Some t -> admitted := t :: !admitted
        | None -> refused := true
      done;
      check Alcotest.bool "full ring refuses admission" true !refused;
      check Alcotest.bool "ring depth respected" true (!attempts <= 4);
      Atomic.set gate true;
      (* everything that was admitted still completes: nothing dropped *)
      Option.iter Pool.await blocker;
      List.iter Pool.await !admitted)

let test_pool_await_timeout () =
  let pool = pool_of ~domains:1 old_source in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let gate = Atomic.make false in
      match
        Pool.try_submit pool ~shard:0 (fun _ ->
            while not (Atomic.get gate) do
              Unix.sleepf 0.001
            done;
            "done")
      with
      | None -> Alcotest.fail "submit refused"
      | Some ticket ->
          (match Pool.await_timeout ticket ~timeout_s:0.02 with
          | None -> ()
          | Some _ -> Alcotest.fail "timed await beat a blocked worker");
          Atomic.set gate true;
          (* a later await still collects the (late) result *)
          check Alcotest.string "late result" "done" (Pool.await ticket))

let test_pool_shutdown_drains () =
  let pool = pool_of ~domains:1 old_source in
  let seen = Atomic.make 0 in
  let tickets =
    List.init 8 (fun _ ->
        match
          Pool.try_submit pool ~shard:0 (fun _ -> Atomic.incr seen)
        with
        | Some t -> t
        | None -> Alcotest.fail "submit refused")
  in
  Pool.shutdown pool;
  check Alcotest.int "admitted jobs ran" 8 (Atomic.get seen);
  List.iter Pool.await tickets;
  (* post-shutdown submission is refused, not crashed *)
  check Alcotest.bool "post-shutdown refused" true
    (Pool.try_submit pool ~shard:0 (fun _ -> ()) = None);
  (* idempotent *)
  Pool.shutdown pool

(* ------------------------------------------------------------------ *)
(* Daemon over a real socket                                           *)
(* ------------------------------------------------------------------ *)

let socket_counter = ref 0

let fresh_socket () =
  incr socket_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "secpold-test-%d-%d.sock" (Unix.getpid ()) !socket_counter)

let with_daemon ?(domains = 2) ?(config = Daemon.default_config) source f =
  let socket_path = fresh_socket () in
  let config = { config with Daemon.socket_path; domains } in
  let daemon = Daemon.start ~config (compile_ok source) in
  Fun.protect ~finally:(fun () -> Daemon.stop daemon) (fun () -> f daemon socket_path)

let with_client socket_path f =
  let client = Client.connect socket_path in
  Fun.protect ~finally:(fun () -> Client.close client) (fun () -> f client)

let test_daemon_decide_parity () =
  with_daemon old_source (fun _ socket_path ->
      with_client socket_path (fun client ->
          let subjects = [| "sensors"; "gateway"; "ecu"; "telematics" |] in
          let assets = [| "telemetry"; "engine"; "other" |] in
          let reqs =
            Array.init 64 (fun i ->
                req
                  ?msg_id:(if i mod 3 = 0 then Some i else None)
                  ~op:(if i mod 2 = 0 then Ir.Read else Ir.Write)
                  subjects.(i mod Array.length subjects)
                  assets.(i mod Array.length assets))
          in
          let b = Client.decide client reqs in
          check Alcotest.bool "not degraded" false b.Client.degraded;
          check Alcotest.bool "not shed" false b.Client.shed;
          let engine = Engine.create (compile_ok old_source) in
          Array.iteri
            (fun i r ->
              check Alcotest.bool
                (Printf.sprintf "request %d parity" i)
                ((Engine.decide engine r).Engine.decision = Ast.Allow)
                b.Client.allows.(i))
            reqs))

let test_daemon_empty_batch () =
  with_daemon old_source (fun _ socket_path ->
      with_client socket_path (fun client ->
          let b = Client.decide client [||] in
          check Alcotest.int "empty answer" 0 (Array.length b.Client.allows)))

let test_daemon_reload_gate () =
  with_daemon old_source (fun daemon socket_path ->
      with_client socket_path (fun client ->
          check Alcotest.bool "pre-swap deny" false
            (Client.decide_one client (probe ()));
          (* widening without the override: refused, nothing changes *)
          let r = Client.reload client new_source in
          check Alcotest.bool "refused" true
            (r.Client.status = Wire.Refused_widened);
          check Alcotest.int "widened count" 1 r.Client.widened;
          check Alcotest.int "epoch unchanged" 1 (Daemon.epoch daemon);
          check Alcotest.bool "still denied" false
            (Client.decide_one client (probe ()));
          (* with the override: swapped and immediately visible *)
          let r = Client.reload client ~allow_widen:true new_source in
          check Alcotest.bool "swapped" true (r.Client.status = Wire.Swapped);
          check Alcotest.int "epoch 2" 2 r.Client.epoch;
          check Alcotest.bool "post-swap allow" true
            (Client.decide_one client (probe ()));
          (* a pure tightening needs no override *)
          let r = Client.reload client tightened_source in
          check Alcotest.bool "tightening swaps" true
            (r.Client.status = Wire.Swapped);
          check Alcotest.int "no widening" 0 r.Client.widened;
          check Alcotest.bool "tightened epoch" true (r.Client.epoch = 3)))

let test_daemon_reload_rejects_garbage () =
  with_daemon old_source (fun daemon socket_path ->
      with_client socket_path (fun client ->
          let r = Client.reload client "policy \"broken\" {" in
          check Alcotest.bool "rejected" true (r.Client.status = Wire.Rejected);
          check Alcotest.int "epoch unchanged" 1 (Daemon.epoch daemon);
          check Alcotest.bool "still serving" true
            (Client.decide_one client (req "sensors" "telemetry"))))

(* The headline test: hammer the socket from several threads while the
   policy is swapped underneath.  Nothing may error or be dropped, each
   thread's probe answer must change monotonically deny -> allow (at
   most one flip), and after the reload ack a fresh connection must see
   only the new policy. *)
let test_daemon_swap_under_load () =
  with_daemon ~domains:4 old_source (fun _ socket_path ->
      let threads = 4 in
      let deadline = Unix.gettimeofday () +. 1.2 in
      let errors = Atomic.make 0 in
      let dropped = Atomic.make 0 in
      let flips = Array.make threads 0 in
      let first = Array.make threads None in
      let last = Array.make threads None in
      let reqs = Array.make 8 (probe ()) in
      let worker i =
        with_client socket_path (fun client ->
            while Unix.gettimeofday () < deadline do
              match Client.decide client reqs with
              | exception _ -> Atomic.incr errors
              | b ->
                  if b.Client.degraded || b.Client.shed then
                    Atomic.incr dropped
                  else begin
                    let v = b.Client.allows.(0) in
                    (match last.(i) with
                    | Some prev when prev <> v -> flips.(i) <- flips.(i) + 1
                    | _ -> ());
                    if first.(i) = None then first.(i) <- Some v;
                    last.(i) <- Some v
                  end
            done)
      in
      let handles =
        Array.init threads (fun i -> Thread.create (fun () -> worker i) ())
      in
      Thread.delay 0.3;
      let swap_epoch =
        with_client socket_path (fun client ->
            let r = Client.reload client ~allow_widen:true new_source in
            check Alcotest.bool "swapped mid-load" true
              (r.Client.status = Wire.Swapped);
            r.Client.epoch)
      in
      (* zero stale after the ack: a fresh connection immediately after
         the reload response must see the new policy *)
      check Alcotest.bool "post-ack decision is fresh" true
        (with_client socket_path (fun c -> Client.decide_one c (probe ())));
      check Alcotest.int "epoch bumped" 2 swap_epoch;
      Array.iter Thread.join handles;
      check Alcotest.int "zero transport errors" 0 (Atomic.get errors);
      check Alcotest.int "zero degraded/shed" 0 (Atomic.get dropped);
      for i = 0 to threads - 1 do
        check Alcotest.bool
          (Printf.sprintf "thread %d started on old policy" i)
          true
          (first.(i) = Some false);
        check Alcotest.bool
          (Printf.sprintf "thread %d ended on new policy" i)
          true
          (last.(i) = Some true);
        check Alcotest.bool
          (Printf.sprintf "thread %d monotone transition" i)
          true
          (flips.(i) <= 1)
      done)

(* a server-side close surfaces as EOF or, when the server discards
   unread bytes, as ECONNRESET — either way the connection is dead *)
let conn_dropped fd =
  let buf = Bytes.create 1 in
  match Unix.read fd buf 0 1 with
  | 0 -> true
  | _ -> false
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> true

let test_daemon_survives_garbage () =
  with_daemon old_source (fun daemon socket_path ->
      let before = Daemon.wire_errors daemon in
      (* a raw connection spraying garbage: huge length prefix *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket_path);
      let junk = Bytes.create 8 in
      Bytes.set_int32_le junk 0 0x7FFFFFFFl;
      Bytes.fill junk 4 4 '\xAA';
      ignore (Unix.write fd junk 0 8);
      check Alcotest.bool "connection dropped" true (conn_dropped fd);
      Unix.close fd;
      (* undecodable body: valid small frame, unknown type tag *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket_path);
      let bad = Bytes.create 5 in
      Bytes.set_int32_le bad 0 1l;
      Bytes.set bad 4 '\xEE';
      ignore (Unix.write fd bad 0 5);
      check Alcotest.bool "second connection dropped" true (conn_dropped fd);
      Unix.close fd;
      (* truncated header: two bytes then close — not an error, just EOF *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket_path);
      ignore (Unix.write fd (Bytes.make 2 'x') 0 2);
      Unix.close fd;
      check Alcotest.bool "wire errors counted" true
        (Daemon.wire_errors daemon >= before + 2);
      (* and the daemon lives: a well-formed client still gets answers *)
      with_client socket_path (fun client ->
          check Alcotest.bool "daemon alive" true
            (Client.decide_one client (req "sensors" "telemetry"))))

let test_daemon_failsafe_on_stall () =
  with_daemon ~domains:1 old_source (fun daemon socket_path ->
      let pool = Daemon.pool daemon in
      (match
         Pool.try_submit pool ~shard:0 (fun w ->
             Engine.set_stalled (Pool.worker_engine w) true)
       with
      | None -> Alcotest.fail "stall injection refused"
      | Some t -> Pool.await t);
      with_client socket_path (fun client ->
          let b =
            Client.decide client [| req "sensors" "telemetry"; probe () |]
          in
          check Alcotest.bool "degraded flagged" true b.Client.degraded;
          check Alcotest.bool "fail-safe deny" false b.Client.allows.(0);
          check Alcotest.bool "fail-safe deny 2" false b.Client.allows.(1));
      (* recovery: a reload rebinds the worker's engine, clearing the
         stall — the enforcement point comes back without a restart *)
      with_client socket_path (fun client ->
          let r = Client.reload client tightened_source in
          check Alcotest.bool "reload heals" true
            (r.Client.status = Wire.Swapped);
          let b = Client.decide client [| req "sensors" "telemetry" |] in
          check Alcotest.bool "recovered" false b.Client.degraded;
          check Alcotest.bool "answers again" true b.Client.allows.(0)))

let test_daemon_watchdog_timeout () =
  let config =
    { Daemon.default_config with watchdog_deadline_s = 0.05 }
  in
  with_daemon ~domains:1 ~config old_source (fun daemon socket_path ->
      let before = Daemon.watchdog_trips daemon in
      (* wedge the only worker so the decide below misses the deadline *)
      let gate = Atomic.make false in
      (match
         Pool.try_submit (Daemon.pool daemon) ~shard:0 (fun _ ->
             while not (Atomic.get gate) do
               Unix.sleepf 0.001
             done)
       with
      | None -> Alcotest.fail "wedge refused"
      | Some _ -> ());
      with_client socket_path (fun client ->
          let b = Client.decide client [| req "sensors" "telemetry" |] in
          check Alcotest.bool "watchdog degrades" true b.Client.degraded;
          check Alcotest.bool "watchdog denies" false b.Client.allows.(0));
      check Alcotest.bool "trip counted" true
        (Daemon.watchdog_trips daemon > before);
      Atomic.set gate true;
      (* the wedged worker drains and the shard serves again *)
      with_client socket_path (fun client ->
          let b = Client.decide client [| req "sensors" "telemetry" |] in
          check Alcotest.bool "re-armed" false b.Client.degraded;
          check Alcotest.bool "serves after re-arm" true b.Client.allows.(0)))

let test_daemon_stats_scrape () =
  with_daemon ~domains:2 old_source (fun _ socket_path ->
      with_client socket_path (fun client ->
          ignore (Client.decide client [| req "sensors" "telemetry"; probe () |]);
          let body = Client.stats client in
          match Json.of_string body with
          | Error e -> Alcotest.failf "stats not JSON: %s" e
          | Ok json ->
              let int_at field =
                match Json.member field json with
                | Some (Json.Int i) -> i
                | _ -> Alcotest.failf "missing %s" field
              in
              check Alcotest.int "epoch" 1 (int_at "epoch");
              check Alcotest.int "domains" 2 (int_at "domains");
              check Alcotest.int "requests" 2 (int_at "requests");
              check Alcotest.int "no shed" 0 (int_at "shed");
              check Alcotest.int "no trips" 0 (int_at "watchdog_trips");
              check Alcotest.int "no misses" 0 (int_at "missing_shards");
              (match Json.member "engine" json with
              | Some engine ->
                  check Alcotest.bool "engine decisions counted" true
                    (match Json.member "decisions" engine with
                    | Some (Json.Int n) -> n = 2
                    | _ -> false)
              | None -> Alcotest.fail "missing engine stats");
              check Alcotest.bool "metrics present" true
                (Json.member "metrics" json <> None)))

let () =
  Alcotest.run "secpol_serve"
    [
      ( "wire",
        [
          QCheck_alcotest.to_alcotest prop_wire_roundtrip;
          quick "max batch round trip" test_wire_max_batch;
          quick "truncations fail closed" test_wire_truncations;
          quick "garbage fails closed" test_wire_garbage;
        ] );
      ( "pool",
        [
          quick "decides on workers" test_pool_decides;
          quick "swap bumps epoch everywhere" test_pool_swap_epoch;
          quick "swap keeps counters" test_pool_swap_keeps_counters;
          quick "full ring refuses admission" test_pool_backpressure;
          quick "await timeout" test_pool_await_timeout;
          quick "shutdown drains" test_pool_shutdown_drains;
        ] );
      ( "daemon",
        [
          quick "decide parity over socket" test_daemon_decide_parity;
          quick "empty batch" test_daemon_empty_batch;
          quick "reload gate refuses widenings" test_daemon_reload_gate;
          quick "reload rejects garbage" test_daemon_reload_rejects_garbage;
          quick "hot swap under load" test_daemon_swap_under_load;
          quick "survives malformed frames" test_daemon_survives_garbage;
          quick "fail-safe denies on stall" test_daemon_failsafe_on_stall;
          quick "watchdog timeout" test_daemon_watchdog_timeout;
          quick "stats scrape" test_daemon_stats_scrape;
        ] );
    ]
