(* Tests for the simulation substrate: RNG, event queue, engine, stats. *)

module Rng = Secpol_sim.Rng
module Event_queue = Secpol_sim.Event_queue
module Engine = Secpol_sim.Engine
module Stats = Secpol_sim.Stats

let check = Alcotest.check

(* ---------- RNG ---------- *)

let test_rng_deterministic () =
  let a = Rng.create 7L and b = Rng.create 7L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1L and b = Rng.create 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let rng = Rng.create 3L in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_uniform_non_power_of_two () =
  (* regression for the modulo-bias fix: every residue of a bound that
     does not divide 2^62 must land close to its fair share.  The check is
     deliberately coarse (the pre-fix bias at small bounds was ~2^-60 per
     draw, invisible at any sample size) — what it pins is that rejection
     sampling still produces all residues at the right rate and never
     loops or drops a class. *)
  let rng = Rng.create 41L in
  let bound = 7 in
  let n = 70_000 in
  let counts = Array.make bound 0 in
  for _ = 1 to n do
    let v = Rng.int rng bound in
    counts.(v) <- counts.(v) + 1
  done;
  let fair = n / bound in
  Array.iteri
    (fun residue c ->
      Alcotest.(check bool)
        (Printf.sprintf "residue %d count %d near %d" residue c fair)
        true
        (c > fair * 9 / 10 && c < fair * 11 / 10))
    counts

let test_rng_int_power_of_two_stream_unchanged () =
  (* power-of-two bounds divide the 62-bit space exactly, so rejection
     never triggers and the stream is bit-identical to the pre-fix one:
     int followed by bits64 must agree with a hand-computed mod over the
     same raw draws *)
  let a = Rng.create 9L and b = Rng.create 9L in
  for _ = 1 to 200 do
    let expected =
      Int64.to_int (Int64.logand (Rng.bits64 b) 0x3FFFFFFFFFFFFFFFL) mod 64
    in
    Alcotest.(check int) "same draw" expected (Rng.int a 64)
  done

let test_rng_int_invalid () =
  let rng = Rng.create 3L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_in () =
  let rng = Rng.create 5L in
  for _ = 1 to 500 do
    let v = Rng.int_in rng (-3) 3 in
    Alcotest.(check bool) "in closed range" true (v >= -3 && v <= 3)
  done

let test_rng_split_independent () =
  let root = Rng.create 11L in
  let a = Rng.split root in
  let b = Rng.split root in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 4)

let test_rng_copy_diverges_from_original () =
  let a = Rng.create 13L in
  let b = Rng.copy a in
  check Alcotest.int64 "copies agree" (Rng.bits64 a) (Rng.bits64 b);
  ignore (Rng.bits64 a);
  (* advancing one does not advance the other *)
  let a3 = Rng.bits64 a and b2 = Rng.bits64 b in
  Alcotest.(check bool) "diverged" true (a3 <> b2)

let test_rng_chance_extremes () =
  let rng = Rng.create 17L in
  Alcotest.(check bool) "p=0 never" false (Rng.chance rng 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.chance rng 1.0)

let test_rng_float_bounds () =
  let rng = Rng.create 19L in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_exponential_positive () =
  let rng = Rng.create 23L in
  for _ = 1 to 200 do
    Alcotest.(check bool) "positive" true (Rng.exponential rng 5.0 > 0.0)
  done

let test_rng_exponential_mean () =
  let rng = Rng.create 29L in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Rng.exponential rng 4.0
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.2f within 10%% of 4.0" mean)
    true
    (mean > 3.6 && mean < 4.4)

let test_rng_pick_and_shuffle () =
  let rng = Rng.create 31L in
  let arr = [| 1; 2; 3; 4; 5 |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "pick member" true (Array.mem (Rng.pick rng arr) arr)
  done;
  let arr2 = Array.init 20 Fun.id in
  Rng.shuffle rng arr2;
  let sorted = Array.copy arr2 in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

(* ---------- Event queue ---------- *)

let test_queue_order () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:3.0 "c";
  Event_queue.add q ~time:1.0 "a";
  Event_queue.add q ~time:2.0 "b";
  let order = List.map snd (Event_queue.drain q) in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] order

let test_queue_fifo_same_time () =
  let q = Event_queue.create () in
  List.iter (fun p -> Event_queue.add q ~time:1.0 p) [ "x"; "y"; "z" ];
  let order = List.map snd (Event_queue.drain q) in
  Alcotest.(check (list string)) "insertion order" [ "x"; "y"; "z" ] order

let test_queue_peek_pop () =
  let q = Event_queue.create () in
  Alcotest.(check (option (float 0.0))) "empty peek" None (Event_queue.peek_time q);
  Event_queue.add q ~time:5.0 0;
  Alcotest.(check (option (float 0.0))) "peek" (Some 5.0) (Event_queue.peek_time q);
  check Alcotest.int "length" 1 (Event_queue.length q);
  (match Event_queue.pop q with
  | Some (t, v) ->
      check Alcotest.(float 0.0) "pop time" 5.0 t;
      check Alcotest.int "pop value" 0 v
  | None -> Alcotest.fail "expected event");
  Alcotest.(check bool) "empty after pop" true (Event_queue.is_empty q)

let test_queue_nan_rejected () =
  let q = Event_queue.create () in
  Alcotest.check_raises "NaN" (Invalid_argument "Event_queue.add: NaN time")
    (fun () -> Event_queue.add q ~time:Float.nan ())

let test_queue_clear () =
  let q = Event_queue.create () in
  for i = 1 to 10 do
    Event_queue.add q ~time:(float_of_int i) i
  done;
  Event_queue.clear q;
  Alcotest.(check bool) "cleared" true (Event_queue.is_empty q);
  (* still usable after clear *)
  Event_queue.add q ~time:1.0 99;
  check Alcotest.int "usable" 1 (Event_queue.length q)

let prop_queue_sorted =
  QCheck.Test.make ~name:"event queue drains sorted by time" ~count:200
    QCheck.(list (pair (float_bound_inclusive 1000.0) small_int))
    (fun events ->
      let q = Event_queue.create () in
      List.iter (fun (t, v) -> Event_queue.add q ~time:t v) events;
      let drained = Event_queue.drain q in
      let times = List.map fst drained in
      List.length drained = List.length events
      && List.sort compare times = times)

(* Regression: a popped entry must not linger in the heap's vacated slot,
   or long-lived queues pin every payload ever scheduled (a space leak).
   Weak pointers observe collectability directly. *)
let test_queue_pop_releases_payload () =
  let q = Event_queue.create () in
  let weak = Weak.create 1 in
  (let payload = Bytes.make 64 'x' in
   Weak.set weak 0 (Some payload);
   Event_queue.add q ~time:1.0 payload;
   Event_queue.add q ~time:2.0 (Bytes.make 64 'y'));
  (match Event_queue.pop q with
  | Some (_, p) -> ignore (Sys.opaque_identity p)
  | None -> Alcotest.fail "expected event");
  Gc.full_major ();
  Alcotest.(check bool) "popped payload collected" false (Weak.check weak 0);
  (* the queue itself stays alive and intact *)
  check Alcotest.int "remaining entry" 1 (Event_queue.length q)

let test_queue_clear_releases_payloads () =
  let q = Event_queue.create () in
  let weak = Weak.create 1 in
  (let payload = Bytes.make 64 'z' in
   Weak.set weak 0 (Some payload);
   Event_queue.add q ~time:1.0 payload);
  Event_queue.clear q;
  Gc.full_major ();
  Alcotest.(check bool) "cleared payload collected" false (Weak.check weak 0)

(* ---------- Engine ---------- *)

let test_engine_schedule_order () =
  let sim = Engine.create () in
  let log = ref [] in
  Engine.schedule sim ~at:2.0 (fun _ -> log := "b" :: !log);
  Engine.schedule sim ~at:1.0 (fun _ -> log := "a" :: !log);
  Engine.run_until sim 10.0;
  Alcotest.(check (list string)) "fired in order" [ "a"; "b" ] (List.rev !log);
  check Alcotest.(float 0.0) "clock at horizon" 10.0 (Engine.now sim)

let test_engine_past_rejected () =
  let sim = Engine.create () in
  Engine.run_until sim 5.0;
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule: time in the past")
    (fun () -> Engine.schedule sim ~at:1.0 (fun _ -> ()))

let test_engine_schedule_in () =
  let sim = Engine.create () in
  let fired_at = ref (-1.0) in
  Engine.run_until sim 1.0;
  Engine.schedule_in sim ~delay:2.5 (fun s -> fired_at := Engine.now s);
  Engine.run_until sim 10.0;
  check Alcotest.(float 1e-9) "fired at 3.5" 3.5 !fired_at

let test_engine_every () =
  let sim = Engine.create () in
  let count = ref 0 in
  Engine.every sim ~period:1.0 ~until:5.5 (fun _ -> incr count);
  Engine.run_until sim 100.0;
  check Alcotest.int "five ticks" 5 !count

let test_engine_every_unbounded () =
  let sim = Engine.create () in
  let count = ref 0 in
  Engine.every sim ~period:0.5 (fun _ -> incr count);
  Engine.run_until sim 10.0;
  check Alcotest.int "twenty ticks" 20 !count

let test_engine_cascading () =
  (* events scheduled during execution still run within the horizon *)
  let sim = Engine.create () in
  let log = ref [] in
  Engine.schedule sim ~at:1.0 (fun s ->
      log := 1 :: !log;
      Engine.schedule_in s ~delay:1.0 (fun _ -> log := 2 :: !log));
  Engine.run_until sim 5.0;
  Alcotest.(check (list int)) "cascade" [ 1; 2 ] (List.rev !log)

let test_engine_stop () =
  let sim = Engine.create () in
  let count = ref 0 in
  Engine.every sim ~period:1.0 (fun _ -> incr count);
  Engine.run_until sim 3.0;
  Engine.stop sim;
  Engine.run_until sim 10.0;
  check Alcotest.int "stopped" 3 !count

let test_engine_stop_mid_tick () =
  (* a stop issued from inside an [every] callback must prevent that very
     callback from re-arming itself — the queue is cleared *after* the
     callback returns, so the reschedule must be epoch-guarded *)
  let sim = Engine.create () in
  let count = ref 0 in
  Engine.every sim ~period:1.0 (fun s ->
      incr count;
      if !count = 2 then Engine.stop s);
  Engine.run_until sim 10.0;
  check Alcotest.int "no reschedule after stop" 2 !count;
  (* the engine stays usable: periodics armed after the stop belong to the
     new epoch and run normally *)
  let again = ref 0 in
  Engine.every sim ~period:1.0 (fun _ -> incr again);
  Engine.run_until sim 15.0;
  check Alcotest.int "fresh periodic unaffected" 5 !again

let test_engine_run_next () =
  let sim = Engine.create () in
  Alcotest.(check bool) "empty" false (Engine.run_next sim);
  Engine.schedule sim ~at:4.0 (fun _ -> ());
  Alcotest.(check bool) "ran one" true (Engine.run_next sim);
  check Alcotest.(float 0.0) "clock moved" 4.0 (Engine.now sim)

(* ---------- Stats ---------- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check Alcotest.int "count" 4 (Stats.count s);
  check Alcotest.(float 1e-9) "mean" 2.5 (Stats.mean s);
  check Alcotest.(float 1e-9) "total" 10.0 (Stats.total s);
  check Alcotest.(float 1e-9) "min" 1.0 (Stats.min s);
  check Alcotest.(float 1e-9) "max" 4.0 (Stats.max s);
  check Alcotest.(float 1e-6) "variance" (5.0 /. 3.0) (Stats.variance s)

let test_stats_empty () =
  let s = Stats.create () in
  check Alcotest.(float 0.0) "mean of empty" 0.0 (Stats.mean s);
  Alcotest.check_raises "min of empty" (Invalid_argument "Stats.min: empty sample")
    (fun () -> ignore (Stats.min s))

let test_stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  check Alcotest.(float 0.0) "p50" 50.0 (Stats.percentile s 50.0);
  check Alcotest.(float 0.0) "p99" 99.0 (Stats.percentile s 99.0);
  check Alcotest.(float 0.0) "p100" 100.0 (Stats.percentile s 100.0);
  check Alcotest.(float 0.0) "median" 50.0 (Stats.median s)

let test_stats_nan_excluded () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; Float.nan; 2.0; Float.nan; 3.0 ];
  check Alcotest.int "count ignores NaN" 3 (Stats.count s);
  check Alcotest.int "nan_count" 2 (Stats.nan_count s);
  check Alcotest.(float 1e-9) "mean unaffected" 2.0 (Stats.mean s);
  check Alcotest.(float 1e-9) "min unaffected" 1.0 (Stats.min s);
  check Alcotest.(float 1e-9) "max unaffected" 3.0 (Stats.max s);
  check Alcotest.(float 1e-9) "median unaffected" 2.0 (Stats.median s);
  Alcotest.(check bool)
    "p99 is a number" false
    (Float.is_nan (Stats.percentile s 99.0))

let test_stats_all_nan_is_empty () =
  let s = Stats.create () in
  Stats.add s Float.nan;
  check Alcotest.int "count" 0 (Stats.count s);
  check Alcotest.int "nan_count" 1 (Stats.nan_count s);
  Alcotest.check_raises "min still empty"
    (Invalid_argument "Stats.min: empty sample") (fun () ->
      ignore (Stats.min s))

let test_stats_single_sample () =
  let s = Stats.create () in
  Stats.add s 7.5;
  check Alcotest.(float 0.0) "p0" 7.5 (Stats.percentile s 0.0);
  check Alcotest.(float 0.0) "p50" 7.5 (Stats.percentile s 50.0);
  check Alcotest.(float 0.0) "p100" 7.5 (Stats.percentile s 100.0);
  check Alcotest.(float 0.0) "variance" 0.0 (Stats.variance s)

let test_stats_p0_p100_exact () =
  let s = Stats.create ~reservoir:16 () in
  (* overflow the reservoir: extremes must stay exact regardless *)
  for i = 1 to 10_000 do
    Stats.add s (float_of_int i)
  done;
  check Alcotest.(float 0.0) "p0 = exact min" 1.0 (Stats.percentile s 0.0);
  check Alcotest.(float 0.0) "p100 = exact max" 10_000.0
    (Stats.percentile s 100.0);
  check Alcotest.int "count keeps the true n" 10_000 (Stats.count s)

let test_stats_bounded_memory () =
  let s = Stats.create ~reservoir:64 () in
  for i = 1 to 100_000 do
    Stats.add s (float_of_int i)
  done;
  ignore (Stats.percentile s 50.0);
  let words = Obj.reachable_words (Obj.repr s) in
  (* reservoir (64) + sorted cache (64) + a fixed record: far below the
     100k floats an unbounded sample list would hold *)
  Alcotest.(check bool)
    (Printf.sprintf "reachable words bounded (%d)" words)
    true (words < 2_000);
  (* the estimated median still lands inside the sample range *)
  let p50 = Stats.percentile s 50.0 in
  Alcotest.(check bool) "median in range" true (p50 >= 1.0 && p50 <= 100_000.0)

let prop_percentile_bounded =
  QCheck.Test.make ~name:"percentile stays within [min,max]" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_inclusive 100.0))
              (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let v = Stats.percentile s p in
      v >= Stats.min s && v <= Stats.max s)

let prop_mean_welford_matches_naive =
  QCheck.Test.make ~name:"Welford mean matches naive mean" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (float_bound_inclusive 1000.0))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let naive = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Stats.mean s -. naive) < 1e-6 *. (1.0 +. Float.abs naive))

let test_counter () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c "a";
  Stats.Counter.incr c "a";
  Stats.Counter.add c "b" 5;
  check Alcotest.int "a" 2 (Stats.Counter.get c "a");
  check Alcotest.int "b" 5 (Stats.Counter.get c "b");
  check Alcotest.int "missing" 0 (Stats.Counter.get c "zzz");
  Alcotest.(check (list (pair string int)))
    "sorted list"
    [ ("a", 2); ("b", 5) ]
    (Stats.Counter.to_list c)

let quick name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "secpol_sim"
    [
      ( "rng",
        [
          quick "deterministic" test_rng_deterministic;
          quick "seeds differ" test_rng_seeds_differ;
          quick "int bounds" test_rng_int_bounds;
          quick "int uniform (non-power-of-two)" test_rng_int_uniform_non_power_of_two;
          quick "int stream unchanged (power-of-two)" test_rng_int_power_of_two_stream_unchanged;
          quick "int invalid" test_rng_int_invalid;
          quick "int_in bounds" test_rng_int_in;
          quick "split independent" test_rng_split_independent;
          quick "copy diverges" test_rng_copy_diverges_from_original;
          quick "chance extremes" test_rng_chance_extremes;
          quick "float bounds" test_rng_float_bounds;
          quick "exponential positive" test_rng_exponential_positive;
          quick "exponential mean" test_rng_exponential_mean;
          quick "pick and shuffle" test_rng_pick_and_shuffle;
        ] );
      ( "event-queue",
        [
          quick "time order" test_queue_order;
          quick "FIFO at equal time" test_queue_fifo_same_time;
          quick "peek/pop" test_queue_peek_pop;
          quick "NaN rejected" test_queue_nan_rejected;
          quick "clear" test_queue_clear;
          quick "pop releases payload" test_queue_pop_releases_payload;
          quick "clear releases payloads" test_queue_clear_releases_payloads;
          QCheck_alcotest.to_alcotest prop_queue_sorted;
        ] );
      ( "engine",
        [
          quick "schedule order" test_engine_schedule_order;
          quick "past rejected" test_engine_past_rejected;
          quick "schedule_in" test_engine_schedule_in;
          quick "every bounded" test_engine_every;
          quick "every unbounded" test_engine_every_unbounded;
          quick "cascading events" test_engine_cascading;
          quick "stop" test_engine_stop;
          quick "stop from inside a tick" test_engine_stop_mid_tick;
          quick "run_next" test_engine_run_next;
        ] );
      ( "stats",
        [
          quick "basic moments" test_stats_basic;
          quick "empty sample" test_stats_empty;
          quick "percentiles" test_stats_percentile;
          quick "NaN excluded" test_stats_nan_excluded;
          quick "all-NaN sample is empty" test_stats_all_nan_is_empty;
          quick "single sample" test_stats_single_sample;
          quick "p0/p100 exact past capacity" test_stats_p0_p100_exact;
          quick "bounded memory" test_stats_bounded_memory;
          quick "counters" test_counter;
          QCheck_alcotest.to_alcotest prop_percentile_bounded;
          QCheck_alcotest.to_alcotest prop_mean_welford_matches_naive;
        ] );
    ]
