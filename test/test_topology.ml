(* Multi-segment topologies: spec validation, derived routing and its
   equivalence with flat-bus delivery, the central/distributed placement
   switch, and blast-radius containment under segment-scoped faults. *)

module V = Secpol_vehicle
module Can = Secpol_can
module F = Secpol_faults
module Engine = Secpol_sim.Engine
module Topology = Can.Topology
module Tcar = V.Topology_car
module Segment_map = V.Segment_map
module Segmented = V.Segmented
module Car = V.Car
module Names = V.Names
module Messages = V.Messages
module State = V.State
module Node = Can.Node
module Frame = Can.Frame
module Identifier = Can.Identifier

let check = Alcotest.check

let quick name f = Alcotest.test_case name `Quick f

let slow name f = Alcotest.test_case name `Slow f

(* ---------- Spec validation ---------- *)

let expect_invalid what f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail ("accepted " ^ what)

let build ?(flows = []) spec =
  let sim = Engine.create () in
  Topology.create sim spec ~flows

let test_spec_validation () =
  expect_invalid "duplicate segment names" (fun () ->
      build
        { Topology.segments = [ ("a", [ "x" ]); ("a", [ "y" ]) ]; links = [] });
  expect_invalid "node in two segments" (fun () ->
      build
        {
          Topology.segments = [ ("a", [ "x" ]); ("b", [ "x" ]) ];
          links = [ ("g", ("a", "b")) ];
        });
  expect_invalid "link to unknown segment" (fun () ->
      build
        {
          Topology.segments = [ ("a", [ "x" ]); ("b", [ "y" ]) ];
          links = [ ("g", ("a", "nope")) ];
        });
  expect_invalid "cyclic segment graph" (fun () ->
      build
        {
          Topology.segments =
            [ ("a", [ "x" ]); ("b", [ "y" ]); ("c", [ "z" ]) ];
          links =
            [ ("g1", ("a", "b")); ("g2", ("b", "c")); ("g3", ("c", "a")) ];
        });
  expect_invalid "disconnected segment graph" (fun () ->
      build
        {
          Topology.segments =
            [ ("a", [ "x" ]); ("b", [ "y" ]); ("c", [ "z" ]) ];
          links = [ ("g1", ("a", "b")) ];
        });
  expect_invalid "flow from an unknown segment" (fun () ->
      build
        ~flows:[ { Topology.id = 0x100; src = "nope"; dsts = [ "a" ] } ]
        {
          Topology.segments = [ ("a", [ "x" ]); ("b", [ "y" ]) ];
          links = [ ("g", ("a", "b")) ];
        })

let test_derived_whitelists_and_route () =
  let topo =
    build
      ~flows:[ { Topology.id = 0x100; src = "a"; dsts = [ "b" ] } ]
      {
        Topology.segments = [ ("a", [ "x" ]); ("b", [ "y" ]) ];
        links = [ ("g", ("a", "b")) ];
      }
  in
  (* the flow crosses a -> b only; the reverse edge stays empty *)
  check
    Alcotest.(list int)
    "a->b carries the flow" [ 0x100 ]
    (Topology.crossing_ids topo ~gateway:"g" `A_to_b);
  check
    Alcotest.(list int)
    "b->a is empty" []
    (Topology.crossing_ids topo ~gateway:"g" `B_to_a);
  check
    Alcotest.(list string)
    "route follows the carrying edge" [ "a"; "b" ]
    (Topology.route topo ~src:"a" 0x100);
  check
    Alcotest.(list string)
    "no reverse route" [ "b" ]
    (Topology.route topo ~src:"b" 0x100);
  check
    Alcotest.(list string)
    "unknown id stays local" [ "a" ]
    (Topology.route topo ~src:"a" 0x7ff)

let test_components_blast_regions () =
  let sim = Engine.create () in
  let spec = Segment_map.spec () in
  let topo =
    Topology.create sim spec ~flows:(Segment_map.flows ~spec ())
  in
  let sorted comps =
    List.sort compare (List.map (List.sort compare) comps)
  in
  (* severing the infotainment gateway splits exactly that leaf off *)
  check
    Alcotest.(list (list string))
    "leaf cut off"
    (sorted
       [
         [
           Segment_map.seg_powertrain;
           Segment_map.seg_chassis;
           Segment_map.seg_telematics;
         ];
         [ Segment_map.seg_infotainment ];
       ])
    (sorted
       (Topology.components topo ~without:[ Segment_map.gw_infotainment ]));
  (match Topology.components topo ~without:[ "nope" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted an unknown gateway name")

(* ---------- Segmented as the two-segment special case ---------- *)

let test_two_segment_matches_segmented () =
  let spec = Segment_map.two_segment_spec () in
  let sim = Engine.create () in
  let topo = Topology.create sim spec ~flows:(Segment_map.flows ~spec ()) in
  let union =
    List.sort_uniq compare
      (Topology.crossing_ids topo ~gateway:"gateway" `A_to_b
      @ Topology.crossing_ids topo ~gateway:"gateway" `B_to_a)
  in
  check
    Alcotest.(list int)
    "derived whitelist = historical crossing set"
    (List.sort_uniq compare (Segmented.crossing_ids ()))
    union;
  (* and the rebased Segmented still behaves: cross-segment telemetry plus
     the crash chain spanning both buses *)
  let car = Segmented.create () in
  Segmented.run car ~seconds:1.0;
  (match
     V.Infotainment.displayed_speed (Segmented.node car Names.infotainment)
   with
  | Some s -> check Alcotest.(float 0.01) "display shows 50" 50.0 s
  | None -> Alcotest.fail "telemetry never crossed the gateway")

(* ---------- Four-segment reference car ---------- *)

let test_four_segment_benign_function () =
  let car = Tcar.create () in
  Tcar.run car ~seconds:1.0;
  (* speed telemetry reaches the driver display over two hops:
     powertrain -> chassis backbone -> infotainment leaf *)
  (match V.Infotainment.displayed_speed (Tcar.node car Names.infotainment) with
  | Some s -> check Alcotest.(float 0.01) "display shows 50" 50.0 s
  | None -> Alcotest.fail "telemetry never crossed two gateways");
  check
    Alcotest.(list string)
    "accel route spans the star"
    [
      Segment_map.seg_powertrain;
      Segment_map.seg_chassis;
      Segment_map.seg_infotainment;
    ]
    (Topology.route (Tcar.topology car) ~src:Segment_map.seg_powertrain
       Messages.accel_status);
  List.iter
    (fun seg ->
      Alcotest.(check bool) (seg ^ " delivers") true
        (Tcar.deliveries_in car seg > 0);
      check Alcotest.int (seg ^ " false blocks") 0
        (Tcar.false_blocks_in car seg))
    (Tcar.segments car);
  (* the crash chain spans three segments: safety (chassis) locks state,
     door locks react, telematics places the call *)
  V.Safety.trigger_crash (Tcar.node car Names.safety) (Tcar.state car);
  Tcar.run car ~seconds:0.5;
  Alcotest.(check bool) "doors unlocked across segments" false
    (Tcar.state car).State.doors_locked;
  check Alcotest.int "emergency call placed" 1
    (Tcar.state car).State.emergency_calls

(* ---------- Placement: central vs distributed ---------- *)

(* eps_command is designed to cross powertrain -> chassis (ev_ecu -> eps),
   so its ID is on the gateway whitelist.  A forged copy from the sensors
   node rides that whitelist under central placement — the per-ID residual
   weakness — while distributed placement stops it at the sensors' own
   write gate before it ever reaches the bus. *)
let forged_crossing_command placement =
  let car = Tcar.create ~placement () in
  Tcar.run car ~seconds:0.2;
  let marker = "\x7f" in
  let accepted =
    Node.send (Tcar.node car Names.sensors)
      (Frame.data_std Messages.eps_command marker)
  in
  Tcar.run car ~seconds:0.2;
  let received =
    List.exists
      (fun (f : Frame.t) ->
        Identifier.raw f.id = Messages.eps_command && f.payload = marker)
      (Node.received (Tcar.node car Names.eps))
  in
  (car, accepted, received)

let test_central_forwards_crossing_forgery () =
  let car, accepted, received = forged_crossing_command `Central in
  Alcotest.(check bool) "no HPE under central placement" true
    (Tcar.hpe car Names.sensors = None);
  Alcotest.(check bool) "send accepted" true accepted;
  Alcotest.(check bool) "forged crossing ID forwarded to eps" true received

let test_distributed_blocks_at_source () =
  let car, accepted, received = forged_crossing_command `Distributed in
  Alcotest.(check bool) "HPE present" true (Tcar.hpe car Names.sensors <> None);
  Alcotest.(check bool) "write gate refuses the forgery" false accepted;
  Alcotest.(check bool) "eps never sees it" false received;
  (* the refusal happened at the sensors' own write gate — enforcement in
     the source segment, not downstream at a gateway *)
  (match Tcar.hpe car Names.sensors with
  | Some hpe ->
      Alcotest.(check bool) "blocked at the sensors' write gate" true
        (Secpol_hpe.Engine.write_blocks hpe > 0)
  | None -> Alcotest.fail "no HPE on sensors")

(* ---------- Routing equivalence with the flat bus ---------- *)

(* The declared semantics: a topology delivers exactly what the flat
   broadcast bus would, filtered by route membership.  Inject one marked
   frame from a random node with a random standard ID; the receivers on
   the topology car must be the flat car's receivers restricted to
   segments the derived routing reaches from the sender's segment. *)
let prop_routing_matches_flat_filtered =
  QCheck.Test.make ~name:"topology delivery = flat delivery filtered by route"
    ~count:15
    QCheck.(pair (oneofl Names.nodes) (int_range 0 0x7ff))
    (fun (sender, id) ->
      let marker = "\x7f\x7f\x7f\x7f\x7f" in
      let received_marker node =
        List.exists
          (fun (f : Frame.t) ->
            Identifier.raw f.id = id && f.payload = marker)
          (Node.received node)
      in
      let flat = Car.create ~driving:false () in
      ignore (Node.send (Car.node flat sender) (Frame.data_std id marker));
      Car.run flat ~seconds:0.2;
      let flat_receivers =
        List.filter
          (fun n -> n <> sender && received_marker (Car.node flat n))
          Names.nodes
      in
      (* central placement: same stock acceptance filters as the flat car,
         only the gateways between sender and receiver *)
      let tcar = Tcar.create ~placement:`Central ~driving:false () in
      ignore (Node.send (Tcar.node tcar sender) (Frame.data_std id marker));
      Tcar.run tcar ~seconds:0.2;
      let reachable =
        Topology.route (Tcar.topology tcar)
          ~src:(Option.get (Tcar.segment_of tcar sender))
          id
      in
      let expected =
        List.filter
          (fun n ->
            match Tcar.segment_of tcar n with
            | Some seg -> List.mem seg reachable
            | None -> false)
          flat_receivers
      in
      let actual =
        List.filter
          (fun n -> n <> sender && received_marker (Tcar.node tcar n))
          Names.nodes
      in
      expected = actual)

(* ---------- Plans against a topology ---------- *)

let reference_topology () =
  let spec = Segment_map.spec () in
  {
    F.Plan.segments = List.map fst spec.Topology.segments;
    gateways = List.map fst spec.Topology.links;
  }

let test_plan_validates_against_topology () =
  let topology = reference_topology () in
  List.iter
    (fun name ->
      match F.Plan.of_name ~horizon:2.0 name with
      | None -> Alcotest.fail (name ^ " is not a named plan")
      | Some plan -> (
          Alcotest.(check bool)
            (name ^ " listed") true
            (List.mem name F.Plan.named);
          Alcotest.(check bool)
            (name ^ " segment-scoped") true
            (F.Plan.segment_scoped plan);
          match F.Plan.validate ~topology plan with
          | Ok () -> ()
          | Error e -> Alcotest.fail e))
    [ "segment-partition"; "segment-babble"; "gateway-failover" ];
  let bad =
    {
      F.Plan.name = "bad";
      horizon = 2.0;
      entries =
        [
          {
            F.Plan.at = 0.5;
            kind =
              F.Fault.Segment_partition
                { segment = "nope"; heal_after = 0.2 };
          };
        ];
    }
  in
  (match F.Plan.validate ~topology bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted an unknown segment name");
  (* a flat-bus harness owns no segments: every segment-scoped entry is an
     error against the empty topology *)
  let flat = { F.Plan.segments = []; gateways = [] } in
  match
    F.Plan.validate ~topology:flat (F.Plan.segment_partition ~horizon:2.0)
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "flat topology accepted a segment fault"

(* ---------- Blast containment ---------- *)

let test_blast_babble_contained () =
  let plan = F.Plan.segment_babble ~horizon:1.5 in
  let o = F.Blast.run ~seed:7L ~plan () in
  Alcotest.(check bool) "contained" true o.F.Blast.passed;
  Alcotest.(check bool) "no violations" true
    (F.Invariant.Blast.ok o.F.Blast.checker);
  (* the babbling segment is the whole blast region *)
  check
    Alcotest.(list string)
    "region is the victim segment"
    [ Segment_map.seg_infotainment ]
    (F.Blast.faulted o.F.Blast.blast)

let test_blast_unbounded_gateway_caught () =
  (* the deliberately-broken build: an effectively unlimited admission
     queue lets the babble grow a backlog the containment gate must see.
     The full 4 s horizon gives the 1.8 s babble window time to queue
     more forwards than the backlog bound *)
  let plan = F.Plan.segment_babble ~horizon:4.0 in
  let o = F.Blast.run ~unbounded_gateway:true ~seed:7L ~plan () in
  Alcotest.(check bool) "containment violated" false o.F.Blast.passed;
  Alcotest.(check bool) "backlog check fired" true
    (List.exists
       (fun (v : F.Invariant.violation) -> v.check = "blast_gateway_backlog")
       (F.Invariant.Blast.violations o.F.Blast.checker))

let test_blast_gateway_failover_limp_home () =
  let plan = F.Plan.gateway_failover ~horizon:2.0 in
  let o = F.Blast.run ~seed:7L ~plan () in
  Alcotest.(check bool) "failover contained" true o.F.Blast.passed;
  match F.Blast.records o.F.Blast.blast with
  | [ r ] ->
      check
        Alcotest.(list string)
        "blast region is the cut-off leaf"
        [ Segment_map.seg_infotainment ]
        r.F.Blast.region;
      Alcotest.(check bool) "fault cleared into limp-home" true
        (r.F.Blast.cleared_at <> None)
  | _ -> Alcotest.fail "expected exactly one plan record"

let () =
  Alcotest.run "secpol_topology"
    [
      ( "spec",
        [
          quick "validation rejects malformed graphs" test_spec_validation;
          quick "derived whitelists and routing"
            test_derived_whitelists_and_route;
          quick "components = blast regions" test_components_blast_regions;
        ] );
      ( "segmented",
        [ quick "two-segment special case" test_two_segment_matches_segmented ]
      );
      ( "reference car",
        [
          slow "four-segment benign function" test_four_segment_benign_function;
        ] );
      ( "placement",
        [
          quick "central forwards crossing forgery"
            test_central_forwards_crossing_forgery;
          quick "distributed blocks at source"
            test_distributed_blocks_at_source;
        ] );
      ( "routing",
        [ QCheck_alcotest.to_alcotest prop_routing_matches_flat_filtered ] );
      ( "plans",
        [
          quick "validated against the topology"
            test_plan_validates_against_topology;
        ] );
      ( "blast",
        [
          slow "babble contained" test_blast_babble_contained;
          slow "unbounded gateway caught" test_blast_unbounded_gateway_caught;
          slow "gateway failover limp-home"
            test_blast_gateway_failover_limp_home;
        ] );
    ]
