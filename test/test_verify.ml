(* Tests for the semantic verifier: Intervals/Region set algebra, symbolic
   partitions, the interpreter/compiled/symbolic equivalence proof, mode
   merging (SP010), dead regions (SP011), semantic diffing (SP012),
   threat-obligation checking (SP013) and the diagnostic catalogue. *)

module Ast = Secpol_policy.Ast
module Parser = Secpol_policy.Parser
module Printer = Secpol_policy.Printer
module Compile = Secpol_policy.Compile
module Ir = Secpol_policy.Ir
module Engine = Secpol_policy.Engine
module Intervals = Secpol_policy.Intervals
module Region = Secpol_policy.Region
module Verify = Secpol_policy.Verify
module Diagnostic = Secpol_policy.Diagnostic
module Threat = Secpol_threat.Threat
module Stride = Secpol_threat.Stride
module Dread = Secpol_threat.Dread
module Obligation = Secpol_threat.Obligation

let check = Alcotest.check

let quick name f = Alcotest.test_case name `Quick f

let parse_ok src =
  match Parser.parse src with
  | Ok p -> p
  | Error e -> Alcotest.fail ("parse failed: " ^ e)

let compile_ok src =
  match Compile.compile (parse_ok src) with
  | Ok (db, _) -> db
  | Error issues ->
      Alcotest.fail
        ("compile failed: "
        ^ String.concat "; "
            (List.map (fun (i : Compile.issue) -> i.message) issues))

let has_code code diagnostics =
  List.exists (fun (d : Diagnostic.t) -> d.code = code) diagnostics

(* ---------- Intervals hardening ---------- *)

let max_id = Region.max_id

let iv ranges = Intervals.of_ranges ranges

let test_intervals_equal () =
  check Alcotest.bool "empty = empty" true
    (Intervals.equal Intervals.empty Intervals.empty);
  check Alcotest.bool "order-insensitive" true
    (Intervals.equal (iv [ (5, 9); (0, 3) ]) (iv [ (0, 3); (5, 9) ]));
  check Alcotest.bool "distinct" false
    (Intervals.equal (iv [ (0, 3) ]) (iv [ (0, 4) ]))

let test_intervals_complement_boundaries () =
  (* complement of the empty set is the whole space, and back *)
  let full = Intervals.complement Intervals.empty ~lo:0 ~hi:max_id in
  check Alcotest.bool "complement empty = full" true
    (Intervals.equal full (iv [ (0, max_id) ]));
  check Alcotest.int "full cardinal is 2^29" (max_id + 1)
    (Intervals.cardinal full);
  check Alcotest.bool "complement full = empty" true
    (Intervals.is_empty (Intervals.complement full ~lo:0 ~hi:max_id));
  (* interior hole: both edges inclusive *)
  let holed = Intervals.complement (iv [ (1, max_id - 1) ]) ~lo:0 ~hi:max_id in
  check Alcotest.bool "edges survive" true
    (Intervals.equal holed (iv [ (0, 0); (max_id, max_id) ]))

let test_intervals_adjacent_coalescing () =
  (* adjacent ranges share no element yet must normalise to one *)
  let u = Intervals.union (iv [ (0, 4) ]) (iv [ (5, 9) ]) in
  check Alcotest.bool "adjacent union coalesces" true
    (Intervals.equal u (iv [ (0, 9) ]));
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "single range" [ (0, 9) ] (Intervals.ranges u);
  (* removing the seam splits it back *)
  let split = Intervals.diff u (iv [ (5, 5) ]) in
  check Alcotest.bool "seam removal splits" true
    (Intervals.equal split (iv [ (0, 4); (6, 9) ]))

let test_intervals_algebra () =
  let a = iv [ (0, 10); (20, 30) ] and b = iv [ (5, 25) ] in
  check Alcotest.bool "inter" true
    (Intervals.equal (Intervals.inter a b) (iv [ (5, 10); (20, 25) ]));
  check Alcotest.bool "diff" true
    (Intervals.equal (Intervals.diff a b) (iv [ (0, 4); (26, 30) ]));
  check Alcotest.bool "subset yes" true (Intervals.subset (iv [ (6, 9) ]) a);
  check Alcotest.bool "subset straddling" false
    (Intervals.subset (iv [ (9, 21) ]) a);
  check Alcotest.bool "empty subset of empty" true
    (Intervals.subset Intervals.empty Intervals.empty);
  (* de Morgan over the full message space *)
  let c x = Intervals.complement x ~lo:0 ~hi:max_id in
  check Alcotest.bool "de morgan" true
    (Intervals.equal (c (Intervals.union a b))
       (Intervals.inter (c a) (c b)))

(* ---------- Region ---------- *)

let test_region_of_messages () =
  check Alcotest.bool "no clause includes the id-less request" true
    (Region.mem Region.full None);
  check Alcotest.bool "no clause includes the top id" true
    (Region.mem Region.full (Some max_id));
  let r = Region.of_messages (Some [ Ast.range 0x100 0x10f ]) in
  check Alcotest.bool "clause excludes the id-less request" false
    (Region.mem r None);
  check Alcotest.bool "clause includes its ids" true (Region.mem r (Some 0x105));
  check Alcotest.int "cardinal counts no-id as one point" (max_id + 2)
    (Region.cardinal Region.full)

let test_region_algebra () =
  let r = Region.of_messages (Some [ Ast.range 10 20 ]) in
  let d = Region.diff Region.full r in
  check Alcotest.bool "diff keeps no-id" true (Region.mem d None);
  check Alcotest.bool "diff drops ids" false (Region.mem d (Some 15));
  check Alcotest.bool "union restores full" true
    (Region.equal (Region.union d r) Region.full);
  check Alcotest.bool "inter with none_only" true
    (Region.equal (Region.inter Region.full Region.none_only) Region.none_only);
  check Alcotest.bool "subset" true (Region.subset r Region.full);
  check Alcotest.bool "none_only not subset of ids" false
    (Region.subset Region.none_only Region.all_ids)

let test_region_witnesses () =
  let w = Region.witnesses Region.full in
  check Alcotest.bool "includes the id-less request" true (List.mem None w);
  check Alcotest.bool "includes the low boundary" true (List.mem (Some 0) w);
  check Alcotest.bool "includes the high boundary" true
    (List.mem (Some max_id) w);
  check Alcotest.bool "all witnesses are members" true
    (List.for_all (Region.mem Region.full) w);
  check (Alcotest.list Alcotest.int) "single point region"
    [ 7 ]
    (List.filter_map Fun.id (Region.witnesses (Region.of_intervals (iv [ (7, 7) ]))))

(* ---------- Symbolic partitions ---------- *)

let strategies =
  [ Engine.Deny_overrides; Engine.Allow_overrides; Engine.First_match ]

let partition_src =
  {|
policy "p" version 1 {
  default deny;
  asset a {
    deny  write from s messages 0x100..0x1ff;
    allow write from s messages 0x180..0x2ff;
  }
}
|}

let test_partition_covers_everything () =
  let db = compile_ok partition_src in
  List.iter
    (fun strategy ->
      let segs =
        Verify.partition ~strategy db
          { Verify.mode = "m"; subject = "s"; asset = "a"; op = Ir.Write }
      in
      (* disjoint and total: the union is the whole dimension and the sum
         of cardinals has no double counting *)
      let union =
        List.fold_left
          (fun acc (s : Verify.segment) -> Region.union acc s.region)
          Region.empty segs
      in
      check Alcotest.bool "total" true (Region.equal union Region.full);
      check Alcotest.int "disjoint"
        (Region.cardinal Region.full)
        (List.fold_left
           (fun acc (s : Verify.segment) -> acc + Region.cardinal s.region)
           0 segs))
    strategies

let test_partition_strategy_folding () =
  let db = compile_ok partition_src in
  let cell = { Verify.mode = "m"; subject = "s"; asset = "a"; op = Ir.Write } in
  let decision_at strategy id =
    let segs = Verify.partition ~strategy db cell in
    let s =
      List.find (fun (s : Verify.segment) -> Region.mem s.region (Some id)) segs
    in
    s.Verify.cls
  in
  (* 0x180..0x1ff is contested: deny-overrides and first-match let the
     deny win, allow-overrides the allow *)
  check Alcotest.bool "deny overrides" true
    (decision_at Engine.Deny_overrides 0x180 = Verify.Deny);
  check Alcotest.bool "first match" true
    (decision_at Engine.First_match 0x180 = Verify.Deny);
  check Alcotest.bool "allow overrides" true
    (decision_at Engine.Allow_overrides 0x180 = Verify.Allow);
  check Alcotest.bool "uncontested allow" true
    (decision_at Engine.Deny_overrides 0x200 = Verify.Allow);
  check Alcotest.bool "default tail" true
    (decision_at Engine.Deny_overrides 0x300 = Verify.Deny)

(* ---------- Equivalence proof ---------- *)

(* A generator biased towards collisions: names from tiny pools so rules
   overlap, conflict and occlude; small message ranges for shared
   boundaries; small rate budgets so exhausted-oracle states are
   reproducible. *)
let small_policy_gen =
  QCheck.Gen.(
    let name_from pool = map (List.nth pool) (0 -- (List.length pool - 1)) in
    let rule_gen =
      let* decision = oneofl [ Ast.Allow; Ast.Deny ] in
      let* op = oneofl [ Ast.Read; Ast.Write; Ast.Rw ] in
      let* subjects =
        oneof
          [
            return Ast.Any_subject;
            map
              (fun l -> Ast.Subjects l)
              (list_size (1 -- 2) (name_from [ "s1"; "s2"; "s3" ]));
          ]
      in
      let* messages =
        oneof
          [
            return None;
            map
              (fun rs ->
                Some (List.map (fun (lo, w) -> Ast.range lo (lo + w)) rs))
              (list_size (1 -- 2) (pair (0 -- 20) (0 -- 6)));
          ]
      in
      let* rate =
        if decision = Ast.Deny then return None
        else
          oneof
            [
              return None;
              map
                (fun (count, window_ms) -> Some (Ast.rate_limit ~count ~window_ms))
                (pair (1 -- 3) (100 -- 1000));
            ]
      in
      return { Ast.decision; op; subjects; messages; rate }
    in
    let block_gen =
      let* asset = name_from [ "a1"; "a2" ] in
      let* rules = list_size (1 -- 3) rule_gen in
      return { Ast.asset; rules }
    in
    let section_gen =
      oneof
        [
          map (fun b -> Ast.Global b) block_gen;
          (let* modes = list_size (1 -- 2) (name_from [ "m1"; "m2" ]) in
           let* blocks = list_size (1 -- 2) block_gen in
           return (Ast.Modes (modes, blocks)));
        ]
    in
    let* default = oneofl [ Ast.Deny; Ast.Allow ] in
    let* sections = list_size (1 -- 3) section_gen in
    return
      {
        Ast.name = "gen";
        version = 1;
        sections = Ast.Default default :: sections;
      })

let compile_gen p =
  match Compile.compile p with
  | Ok (db, _) -> db
  | Error _ -> QCheck.assume_fail ()

let prop_proof_holds =
  QCheck.Test.make
    ~name:"interpreted = compiled = symbolic on random policies" ~count:60
    (QCheck.make small_policy_gen) (fun p ->
      let db = compile_gen p in
      List.for_all
        (fun strategy ->
          let r = Verify.analyse ~strategy db in
          Verify.proved r.Verify.proof
          && not (has_code Diagnostic.Semantics_divergence r.Verify.diagnostics))
        strategies)

let test_proof_on_rated_policy () =
  (* the rated allow falls through to the plain allow when exhausted; the
     proof must enumerate and witness both oracle states *)
  let db =
    compile_ok
      {|
policy "rated" version 1 {
  default deny;
  asset a {
    allow write from s messages 0x10..0x1f rate 2 per 1000;
    allow write from s messages 0x18..0x2f;
    deny  write from t;
  }
}
|}
  in
  List.iter
    (fun strategy ->
      let r = Verify.analyse ~strategy db in
      check Alcotest.bool "proved" true (Verify.proved r.Verify.proof);
      check Alcotest.bool "both oracle states enumerated" true
        (r.Verify.proof.Verify.assignments > r.Verify.proof.Verify.cells))
    strategies

(* ---------- SP010 mode merging ---------- *)

let test_sp010_equivalent_modes () =
  let db =
    compile_ok
      {|
policy "p" version 1 {
  default deny;
  mode day {
    asset a { allow read from s; deny write from s; }
  }
  mode night {
    asset a { deny write from s; allow read from s; }
  }
}
|}
  in
  let r = Verify.analyse db in
  check Alcotest.bool "SP010 fires" true
    (has_code Diagnostic.Mode_mergeable r.Verify.diagnostics);
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "one class" [ [ "day"; "night" ] ] r.Verify.mergeable

let test_sp010_negative () =
  (* differing semantics: no merge *)
  let differing =
    compile_ok
      {|
policy "p" version 1 {
  default deny;
  mode day   { asset a { allow read from s; } }
  mode night { asset a { deny  read from s; } }
}
|}
  in
  check Alcotest.bool "different semantics" true
    ((Verify.analyse differing).Verify.mergeable = []);
  (* identical semantics through the SAME rules: nothing to merge *)
  let co_scoped =
    compile_ok
      {|
policy "p" version 1 {
  default deny;
  mode day, night { asset a { allow read from s; } }
}
|}
  in
  check Alcotest.bool "co-scoped modes not reported" true
    ((Verify.analyse co_scoped).Verify.mergeable = [])

(* ---------- SP011 dead regions ---------- *)

let test_sp011_union_occlusion () =
  (* two denies jointly cover the allow; no single rule does, so the
     single-coverer SP004 pass cannot see it *)
  let db =
    compile_ok
      {|
policy "p" version 1 {
  default deny;
  asset a {
    deny  write from s messages 0x0..0x7;
    deny  write from s messages 0x8..0xf;
    allow write from s messages 0x0..0xf;
  }
}
|}
  in
  let r = Verify.analyse ~strategy:Engine.Deny_overrides db in
  check (Alcotest.list Alcotest.int) "allow rule is dead" [ 2 ]
    r.Verify.dead_rules;
  check Alcotest.bool "SP011 fires" true
    (has_code Diagnostic.Region_empty r.Verify.diagnostics);
  (* sanity: the plain lint's SP004 misses exactly this case *)
  let diagnostics =
    Secpol_policy.Lint.run Secpol_policy.Lint.default_config db
  in
  check Alcotest.bool "SP004 misses union occlusion" false
    (has_code Diagnostic.Unreachable_rule diagnostics)

let test_sp011_negative () =
  let db =
    compile_ok
      {|
policy "p" version 1 {
  default deny;
  asset a {
    deny  write from s messages 0x0..0x7;
    allow write from s messages 0x0..0xf;
  }
}
|}
  in
  let r = Verify.analyse ~strategy:Engine.Deny_overrides db in
  check (Alcotest.list Alcotest.int) "live allow survives" [] r.Verify.dead_rules

let test_sp011_rated_fallthrough_not_dead () =
  (* the unlimited allow is reachable only when the rated rule ahead of it
     is exhausted; the oracle enumeration must keep it alive *)
  let db =
    compile_ok
      {|
policy "p" version 1 {
  default deny;
  asset a {
    allow write from s rate 1 per 1000;
    allow write from s;
  }
}
|}
  in
  let r = Verify.analyse ~strategy:Engine.First_match db in
  check (Alcotest.list Alcotest.int) "fallthrough allow is live" []
    r.Verify.dead_rules

(* ---------- Semantic diff ---------- *)

let prop_diff_self_empty =
  QCheck.Test.make ~name:"diff p p is always empty" ~count:80
    (QCheck.make small_policy_gen) (fun p ->
      let db = compile_gen p in
      List.for_all
        (fun strategy ->
          (Verify.diff ~strategy db db).Verify.deltas = [])
        strategies)

(* Append one allow rule on a fresh asset: under default deny the delta
   must be exactly a widening there, and the reverse diff a tightening. *)
let prop_diff_single_rule_signed =
  QCheck.Test.make ~name:"single-rule edit yields a correctly-signed delta"
    ~count:60 (QCheck.make small_policy_gen) (fun p ->
      let p = { p with Ast.sections = Ast.Default Ast.Deny :: p.Ast.sections } in
      let extra =
        Ast.Global
          {
            Ast.asset = "zfresh";
            rules =
              [
                {
                  Ast.decision = Ast.Allow;
                  op = Ast.Write;
                  subjects = Ast.Subjects [ "zsubj" ];
                  messages = None;
                  rate = None;
                };
              ];
          }
      in
      let p' = { p with Ast.sections = p.Ast.sections @ [ extra ] } in
      let old_db = compile_gen p and new_db = compile_gen p' in
      let forward = Verify.diff old_db new_db in
      let backward = Verify.diff new_db old_db in
      forward.Verify.deltas <> []
      && List.for_all
           (fun (d : Verify.delta) ->
             d.direction = Verify.Widened
             && d.cell.Verify.asset = "zfresh"
             && d.cell.Verify.subject = "zsubj")
           forward.Verify.deltas
      && Verify.count_direction Verify.Tightened forward = 0
      && backward.Verify.deltas <> []
      && Verify.count_direction Verify.Widened backward = 0)

let test_diff_flip_decision () =
  let old_db =
    compile_ok
      {|
policy "p" version 1 {
  default deny;
  asset a { deny write from s messages 0x10..0x1f; }
}
|}
  in
  let new_db =
    compile_ok
      {|
policy "p" version 2 {
  default deny;
  asset a { allow write from s messages 0x10..0x1f; }
}
|}
  in
  let r = Verify.diff old_db new_db in
  check Alcotest.int "one delta" 1 (List.length r.Verify.deltas);
  let d = List.hd r.Verify.deltas in
  check Alcotest.bool "widened" true (d.Verify.direction = Verify.Widened);
  check Alcotest.bool "exact region" true
    (Region.equal d.Verify.region (Region.of_intervals (iv [ (0x10, 0x1f) ])));
  check Alcotest.bool "SP012 emitted" true
    (has_code Diagnostic.Allow_widened r.Verify.diagnostics)

let test_diff_default_change_surfaces () =
  let old_db = compile_ok {|
policy "p" version 1 { default deny; asset a { allow read from s; } }
|} in
  let new_db = compile_ok {|
policy "p" version 2 { default allow; asset a { allow read from s; } }
|} in
  let r = Verify.diff old_db new_db in
  check Alcotest.bool "default flip widens" true
    (Verify.count_direction Verify.Widened r > 0);
  check Alcotest.bool "synthetic asset sees it" true
    (List.exists
       (fun (d : Verify.delta) -> d.Verify.cell.Verify.asset = Verify.other)
       r.Verify.deltas)

let test_diff_rate_change_is_changed () =
  let old_db = compile_ok {|
policy "p" version 1 { default deny; asset a { allow write from s rate 2 per 1000; } }
|} in
  let new_db = compile_ok {|
policy "p" version 2 { default deny; asset a { allow write from s rate 5 per 100; } }
|} in
  let r = Verify.diff old_db new_db in
  check Alcotest.int "changed" 1 (Verify.count_direction Verify.Changed r);
  check Alcotest.int "not widened" 0 (Verify.count_direction Verify.Widened r)

(* ---------- Obligations ---------- *)

let threat ~attack ~legit ?(modes = [ "normal" ]) () =
  Threat.make ~id:"t1" ~title:"test threat" ~asset:"a"
    ~entry_points:[ "ep1" ] ~modes ~stride:[ Stride.Tampering ]
    ~dread:
      (Dread.make_exn ~damage:5 ~reproducibility:5 ~exploitability:5
         ~affected_users:5 ~discoverability:5)
    ~attack_operation:attack ~legitimate_operations:legit ()

let test_obligation_of_threat () =
  let o = Obligation.of_threat (threat ~attack:Threat.Write ~legit:[] ()) in
  check Alcotest.bool "not residual" false o.Obligation.residual;
  check (Alcotest.list Alcotest.string) "no exemptions" []
    o.Obligation.exempt_subjects;
  let residual =
    Obligation.of_threat
      ~subjects_of_entry_point:(fun ep -> [ ep ^ "_node" ])
      (threat ~attack:Threat.Write ~legit:[ Threat.Write; Threat.Read ] ())
  in
  check Alcotest.bool "residual" true residual.Obligation.residual;
  check (Alcotest.list Alcotest.string) "entry subjects exempted"
    [ "ep1_node" ] residual.Obligation.exempt_subjects

let test_obligation_discharged () =
  let db = compile_ok {|
policy "p" version 1 { default deny; asset a { allow read from s; } }
|} in
  let o = Obligation.of_threat (threat ~attack:Threat.Write ~legit:[] ()) in
  let r = Verify.analyse db ~obligations:[ o ] in
  check Alcotest.bool "discharged" true
    (List.for_all Verify.discharged r.Verify.obligations);
  check Alcotest.bool "no SP013" false
    (has_code Diagnostic.Threat_unmitigated r.Verify.diagnostics)

let test_obligation_violated () =
  let db = compile_ok {|
policy "p" version 1 {
  default deny;
  mode normal { asset a { allow write from s messages 0x40..0x4f; } }
}
|} in
  let o = Obligation.of_threat (threat ~attack:Threat.Write ~legit:[] ()) in
  let r = Verify.analyse db ~obligations:[ o ] in
  let status = List.hd r.Verify.obligations in
  check Alcotest.bool "violated" false (Verify.discharged status);
  let v = List.hd status.Verify.violations in
  check Alcotest.string "violating subject" "s" v.Verify.subject;
  check Alcotest.string "violating mode" "normal" v.Verify.mode;
  check Alcotest.bool "exact region" true
    (Region.equal v.Verify.region (Region.of_intervals (iv [ (0x40, 0x4f) ])));
  check Alcotest.bool "SP013 fires" true
    (has_code Diagnostic.Threat_unmitigated r.Verify.diagnostics)

let test_obligation_residual_exemption () =
  (* the exempt entry-point subject may hold the operation; anyone else
     holding it is still a violation *)
  let db = compile_ok {|
policy "p" version 1 {
  default deny;
  mode normal { asset a { allow write from trusted; } }
}
|} in
  let o =
    Obligation.of_threat
      ~subjects_of_entry_point:(fun _ -> [ "trusted" ])
      (threat ~attack:Threat.Write ~legit:[ Threat.Write ] ())
  in
  let r = Verify.analyse db ~obligations:[ o ] in
  check Alcotest.bool "exempt subject discharges" true
    (List.for_all Verify.discharged r.Verify.obligations);
  let db_leaky = compile_ok {|
policy "p" version 1 {
  default deny;
  mode normal { asset a { allow write from trusted, rogue; } }
}
|} in
  let r = Verify.analyse db_leaky ~obligations:[ o ] in
  let status = List.hd r.Verify.obligations in
  check Alcotest.bool "non-exempt subject still violates" false
    (Verify.discharged status);
  check Alcotest.string "the rogue one" "rogue"
    (List.hd status.Verify.violations).Verify.subject

(* ---------- Diagnostic catalogue ---------- *)

let test_codes_roundtrip () =
  List.iter
    (fun c ->
      check Alcotest.bool "id roundtrip" true
        (Diagnostic.code_of_id (Diagnostic.id c) = Some c);
      check Alcotest.bool "slug roundtrip" true
        (Diagnostic.code_of_id (Diagnostic.slug c) = Some c))
    Diagnostic.all_codes;
  check Alcotest.int "fourteen codes" 14 (List.length Diagnostic.all_codes)

let test_explain_every_code () =
  List.iter
    (fun c ->
      check Alcotest.bool
        (Diagnostic.id c ^ " has an explanation")
        true
        (String.length (Diagnostic.explain c) > 40))
    Diagnostic.all_codes

let () =
  Alcotest.run "secpol_verify"
    [
      ( "intervals",
        [
          quick "equal" test_intervals_equal;
          quick "complement boundaries" test_intervals_complement_boundaries;
          quick "adjacent coalescing" test_intervals_adjacent_coalescing;
          quick "algebra" test_intervals_algebra;
        ] );
      ( "region",
        [
          quick "of_messages" test_region_of_messages;
          quick "algebra" test_region_algebra;
          quick "witnesses" test_region_witnesses;
        ] );
      ( "partition",
        [
          quick "covers everything" test_partition_covers_everything;
          quick "strategy folding" test_partition_strategy_folding;
        ] );
      ( "proof",
        [
          QCheck_alcotest.to_alcotest prop_proof_holds;
          quick "rated oracle states" test_proof_on_rated_policy;
        ] );
      ( "sp010",
        [
          quick "equivalent modes" test_sp010_equivalent_modes;
          quick "negatives" test_sp010_negative;
        ] );
      ( "sp011",
        [
          quick "union occlusion" test_sp011_union_occlusion;
          quick "live rule survives" test_sp011_negative;
          quick "rated fallthrough is live" test_sp011_rated_fallthrough_not_dead;
        ] );
      ( "diff",
        [
          QCheck_alcotest.to_alcotest prop_diff_self_empty;
          QCheck_alcotest.to_alcotest prop_diff_single_rule_signed;
          quick "decision flip" test_diff_flip_decision;
          quick "default change surfaces" test_diff_default_change_surfaces;
          quick "rate change is incomparable" test_diff_rate_change_is_changed;
        ] );
      ( "obligations",
        [
          quick "of_threat" test_obligation_of_threat;
          quick "discharged" test_obligation_discharged;
          quick "violated" test_obligation_violated;
          quick "residual exemption" test_obligation_residual_exemption;
        ] );
      ( "codes",
        [
          quick "roundtrip" test_codes_roundtrip;
          quick "explain" test_explain_every_code;
        ] );
    ]
